"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class.  Sub-hierarchies mirror the package
layout: storage-layer errors, query-engine errors, and assembly errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by this package."""


# ---------------------------------------------------------------------------
# Storage layer
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for storage-layer failures."""


class PageError(StorageError):
    """A slotted-page operation failed (bad slot, no free space, ...)."""


class PageFullError(PageError):
    """The record does not fit into the page's free space."""


class BadSlotError(PageError):
    """A slot id does not address a live record."""


class DiskError(StorageError):
    """The simulated disk was asked for an invalid page."""


class ExtentError(DiskError):
    """Extent allocation failed or an address fell outside its extent."""


class BufferError_(StorageError):
    """Base class for buffer-manager failures.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`BufferError`.
    """


class BufferFullError(BufferError_):
    """All buffer frames are pinned; nothing can be evicted."""


class PinError(BufferError_):
    """A page was unfixed more times than it was fixed."""


class RecordError(StorageError):
    """Record encoding or decoding failed."""


class UnknownOidError(StorageError):
    """An OID has no entry in the OID directory."""


class DuplicateOidError(StorageError):
    """An OID was stored twice."""


class IndexError_(StorageError):
    """B-tree index failure (duplicate key on a unique index, ...)."""


class DuplicateKeyError(IndexError_):
    """Insertion of a key that already exists in a unique index."""


class KeyNotFoundError(IndexError_):
    """Deletion or lookup of a key that is not in the index."""


class FaultError(StorageError):
    """Base class of injected I/O failures (:mod:`repro.storage.faults`).

    Raised only while a :class:`~repro.storage.faults.FaultInjector` is
    attached to a disk; the fault-free path never sees this family.
    """


class TransientReadError(FaultError):
    """A physical read failed transiently; retrying may succeed.

    Carries the faulted ``page_id``, the ``device`` it lives on, and
    the 1-based ``attempt`` count of consecutive failures on that page.
    """

    def __init__(
        self,
        message: str = "transient read error",
        page_id: int = -1,
        device: int = 0,
        attempt: int = 0,
    ) -> None:
        super().__init__(message)
        self.page_id = page_id
        self.device = device
        self.attempt = attempt


class DeviceDownError(FaultError):
    """A device is inside a down interval and rejects all reads.

    ``retry_after`` is the injector-clock time at which the interval
    ends (``None`` if unknown) — circuit breakers quarantine the
    device until then instead of retrying blindly.
    """

    def __init__(
        self,
        message: str = "device down",
        device: int = 0,
        retry_after: "float | None" = None,
    ) -> None:
        super().__init__(message)
        self.device = device
        self.retry_after = retry_after


class RetriesExhaustedError(FaultError):
    """A retry policy gave up on a faulted read.

    Chains the final underlying fault as ``__cause__``; carries the
    faulted ``page_id``/``device`` and how many retries were spent.
    """

    def __init__(
        self,
        message: str = "retries exhausted",
        page_id: int = -1,
        device: int = 0,
        retries: int = 0,
    ) -> None:
        super().__init__(message)
        self.page_id = page_id
        self.device = device
        self.retries = retries


# ---------------------------------------------------------------------------
# Volcano query engine
# ---------------------------------------------------------------------------


class QueryError(ReproError):
    """Base class for query-engine failures."""


class IteratorStateError(QueryError):
    """An iterator was driven outside the open/next/close protocol."""


class PlanError(QueryError):
    """A query plan is malformed."""


# ---------------------------------------------------------------------------
# Assembly operator
# ---------------------------------------------------------------------------


class AssemblyError(ReproError):
    """Base class for assembly-operator failures."""


class TemplateError(AssemblyError):
    """A template is structurally invalid."""


class SchedulerError(AssemblyError):
    """A scheduling structure was misused (pop from empty pool, ...)."""


class WindowError(AssemblyError):
    """Sliding-window bookkeeping failed."""


# ---------------------------------------------------------------------------
# Assembly service
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """Base class for assembly-service failures."""


class ServiceOverloadError(ServiceError):
    """Admission control rejected a request: budget and wait queue full."""


class ServiceStateError(ServiceError):
    """A service request was driven outside its lifecycle."""


# ---------------------------------------------------------------------------
# Service fabric
# ---------------------------------------------------------------------------


class FabricError(ServiceError):
    """The sharded service fabric was misconfigured or misdriven."""
