"""A page-backed B+-tree.

Volcano's file system includes B-trees (Section 3).  In this
reproduction the B+-tree serves two roles:

* index scans for the Volcano engine (clustered and unclustered), and
* the related-work baseline of Section 2 — the TID-scan style join
  that looks up record pointers retrieved from an index, whose seek
  behaviour motivated the assembly operator in the first place.

Every node occupies one disk page and is read and written through the
buffer manager, so index traffic is charged seeks like any other I/O.
Keys are signed 64-bit integers; values are fixed 10-byte opaque
payloads (large enough for an encoded OID or RID).  Duplicate keys are
allowed unless the tree is created ``unique=True``.
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right, insort
from typing import Iterator, List, Optional, Tuple

from repro.errors import (
    DuplicateKeyError,
    IndexError_,
    KeyNotFoundError,
    StorageError,
)
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.page import PAGE_HEADER_SIZE, PAGE_SIZE, SLOT_SIZE

_VALUE_SIZE = 10
_NODE_HEADER = struct.Struct(">BHI")  # is_leaf, n_keys, next_leaf
_KEY = struct.Struct(">q")
_CHILD = struct.Struct(">I")
_NO_NEXT = 0xFFFFFFFF

#: Usable bytes for a node record inside a one-record page.
_NODE_BYTES = PAGE_SIZE - PAGE_HEADER_SIZE - SLOT_SIZE

_LEAF_ENTRY = 8 + _VALUE_SIZE
_MAX_LEAF_KEYS = (_NODE_BYTES - _NODE_HEADER.size) // _LEAF_ENTRY
_MAX_INTERNAL_KEYS = (_NODE_BYTES - _NODE_HEADER.size - _CHILD.size) // (
    8 + _CHILD.size
)


class _Node:
    """In-memory image of one B+-tree node."""

    __slots__ = ("page_id", "is_leaf", "keys", "values", "children", "next_leaf")

    def __init__(self, page_id: int, is_leaf: bool) -> None:
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.keys: List[int] = []
        self.values: List[bytes] = []  # leaves only
        self.children: List[int] = []  # internals only
        self.next_leaf: Optional[int] = None

    # -- serialization ------------------------------------------------------

    def encode(self) -> bytes:
        next_leaf = _NO_NEXT if self.next_leaf is None else self.next_leaf
        parts = [_NODE_HEADER.pack(1 if self.is_leaf else 0, len(self.keys), next_leaf)]
        if self.is_leaf:
            for key, value in zip(self.keys, self.values):
                parts.append(_KEY.pack(key))
                parts.append(value)
        else:
            for key in self.keys:
                parts.append(_KEY.pack(key))
            for child in self.children:
                parts.append(_CHILD.pack(child))
        body = b"".join(parts)
        if len(body) > _NODE_BYTES:
            raise StorageError("B+-tree node overflows its page")
        return body + b"\x00" * (_NODE_BYTES - len(body))

    @classmethod
    def decode(cls, page_id: int, data: bytes) -> "_Node":
        is_leaf, n_keys, next_leaf = _NODE_HEADER.unpack(
            data[: _NODE_HEADER.size]
        )
        node = cls(page_id, bool(is_leaf))
        node.next_leaf = None if next_leaf == _NO_NEXT else next_leaf
        pos = _NODE_HEADER.size
        if node.is_leaf:
            for _ in range(n_keys):
                (key,) = _KEY.unpack(data[pos : pos + 8])
                pos += 8
                node.values.append(bytes(data[pos : pos + _VALUE_SIZE]))
                pos += _VALUE_SIZE
                node.keys.append(key)
        else:
            for _ in range(n_keys):
                (key,) = _KEY.unpack(data[pos : pos + 8])
                pos += 8
                node.keys.append(key)
            for _ in range(n_keys + 1):
                (child,) = _CHILD.unpack(data[pos : pos + _CHILD.size])
                pos += _CHILD.size
                node.children.append(child)
        return node


class BTree:
    """A B+-tree index mapping int64 keys to 10-byte values.

    ``max_keys`` caps the fan-out (defaults to what fits in a page);
    tests use small values to force deep trees.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        buffer: Optional[BufferManager] = None,
        max_leaf_keys: int = _MAX_LEAF_KEYS,
        max_internal_keys: int = _MAX_INTERNAL_KEYS,
        unique: bool = False,
        name: str = "btree",
    ) -> None:
        if max_leaf_keys < 2 or max_internal_keys < 2:
            raise IndexError_("B+-tree fan-out must be at least 2")
        if max_leaf_keys > _MAX_LEAF_KEYS or max_internal_keys > _MAX_INTERNAL_KEYS:
            raise IndexError_("B+-tree fan-out exceeds page capacity")
        self._disk = disk
        self.buffer = buffer if buffer is not None else BufferManager(disk)
        self._max_leaf = max_leaf_keys
        self._max_internal = max_internal_keys
        self.unique = unique
        self.name = name
        self._size = 0
        root = self._new_node(is_leaf=True)
        self._root_page = root.page_id
        self._save(root)

    # -- node I/O -------------------------------------------------------------

    def _new_node(self, is_leaf: bool) -> _Node:
        extent = self._disk.allocate(1)
        node = _Node(extent.start, is_leaf)
        # Materialize the node record so later loads can update in place.
        with self.buffer.fixed(node.page_id, dirty=True) as page:
            page.insert(node.encode())
        return node

    def _load(self, page_id: int) -> _Node:
        with self.buffer.fixed(page_id) as page:
            data = page.read(0)
        return _Node.decode(page_id, data)

    def _save(self, node: _Node) -> None:
        with self.buffer.fixed(node.page_id, dirty=True) as page:
            page.update(0, node.encode())

    # -- introspection ------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 = a lone leaf)."""
        levels = 1
        node = self._load(self._root_page)
        while not node.is_leaf:
            node = self._load(node.children[0])
            levels += 1
        return levels

    # -- search ----------------------------------------------------------------------

    def _descend_to_leaf(self, key: int) -> _Node:
        """Leftmost leaf that can contain ``key``.

        Descends with ``bisect_left``: when a separator equals the key,
        duplicates may sit in the child left of it (a leaf split puts
        the separator's equals on both sides), so lookups must start
        there and continue rightward along the leaf chain.
        """
        node = self._load(self._root_page)
        while not node.is_leaf:
            index = bisect_left(node.keys, key)
            node = self._load(node.children[index])
        return node

    def search(self, key: int) -> List[bytes]:
        """All values stored under ``key`` (possibly empty)."""
        node = self._descend_to_leaf(key)
        results: List[bytes] = []
        while node is not None:
            start = bisect_left(node.keys, key)
            if start == len(node.keys) and node.next_leaf is not None:
                node = self._load(node.next_leaf)
                continue
            for i in range(start, len(node.keys)):
                if node.keys[i] != key:
                    return results
                results.append(node.values[i])
            if node.next_leaf is None:
                break
            node = self._load(node.next_leaf)
        return results

    def range_scan(
        self, low: Optional[int] = None, high: Optional[int] = None
    ) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(key, value)`` pairs with ``low <= key <= high``.

        ``None`` bounds are open.  Pairs come out in key order via the
        leaf chain.
        """
        if low is None:
            node = self._load(self._root_page)
            while not node.is_leaf:
                node = self._load(node.children[0])
            start = 0
        else:
            node = self._descend_to_leaf(low)
            start = bisect_left(node.keys, low)
        while node is not None:
            for i in range(start, len(node.keys)):
                key = node.keys[i]
                if high is not None and key > high:
                    return
                yield key, node.values[i]
            if node.next_leaf is None:
                return
            node = self._load(node.next_leaf)
            start = 0

    def items(self) -> Iterator[Tuple[int, bytes]]:
        """Full scan, in key order."""
        return self.range_scan()

    # -- insertion -------------------------------------------------------------------

    def insert(self, key: int, value: bytes) -> None:
        """Insert ``(key, value)``.

        Raises :class:`DuplicateKeyError` on a unique index when the
        key already exists.
        """
        if len(value) != _VALUE_SIZE:
            raise IndexError_(
                f"values must be {_VALUE_SIZE} bytes, got {len(value)}"
            )
        if self.unique and self.search(key):
            raise DuplicateKeyError(f"key {key} already in unique index")
        split = self._insert_into(self._root_page, key, value)
        if split is not None:
            sep_key, right_page = split
            new_root = self._new_node(is_leaf=False)
            new_root.keys = [sep_key]
            new_root.children = [self._root_page, right_page]
            self._save(new_root)
            self._root_page = new_root.page_id
        self._size += 1

    def _insert_into(
        self, page_id: int, key: int, value: bytes
    ) -> Optional[Tuple[int, int]]:
        """Insert under ``page_id``; return ``(sep_key, new_right_page)`` on split."""
        node = self._load(page_id)
        if node.is_leaf:
            index = bisect_right(node.keys, key)
            node.keys.insert(index, key)
            node.values.insert(index, value)
            if len(node.keys) <= self._max_leaf:
                self._save(node)
                return None
            return self._split_leaf(node)
        index = bisect_right(node.keys, key)
        split = self._insert_into(node.children[index], key, value)
        if split is None:
            return None
        sep_key, right_page = split
        node.keys.insert(index, sep_key)
        node.children.insert(index + 1, right_page)
        if len(node.keys) <= self._max_internal:
            self._save(node)
            return None
        return self._split_internal(node)

    def _split_leaf(self, node: _Node) -> Tuple[int, int]:
        mid = len(node.keys) // 2
        right = self._new_node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        right.next_leaf = node.next_leaf
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        node.next_leaf = right.page_id
        self._save(node)
        self._save(right)
        return right.keys[0], right.page_id

    def _split_internal(self, node: _Node) -> Tuple[int, int]:
        mid = len(node.keys) // 2
        sep_key = node.keys[mid]
        right = self._new_node(is_leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        self._save(node)
        self._save(right)
        return sep_key, right.page_id

    # -- bulk loading ----------------------------------------------------------------

    def bulk_load(
        self, items: List[Tuple[int, bytes]], fill: float = 1.0
    ) -> None:
        """Build the tree bottom-up from key-sorted ``(key, value)`` pairs.

        Orders of magnitude cheaper than repeated :meth:`insert` for an
        initial load: leaves are packed left to right at ``fill``
        occupancy and internal levels are stacked on top without any
        splitting.  Requires an empty tree and sorted input (verified);
        duplicates are allowed exactly as for :meth:`insert`.
        """
        if self._size:
            raise IndexError_("bulk load requires an empty tree")
        if not 0.0 < fill <= 1.0:
            raise IndexError_("fill must be in (0, 1]")
        for (key, value) in items:
            if len(value) != _VALUE_SIZE:
                raise IndexError_(
                    f"values must be {_VALUE_SIZE} bytes, got {len(value)}"
                )
        keys = [key for key, _value in items]
        if keys != sorted(keys):
            raise IndexError_("bulk load input must be key-sorted")
        if self.unique and len(set(keys)) != len(keys):
            raise DuplicateKeyError("duplicate keys in unique bulk load")
        if not items:
            return

        per_leaf = max(2, int(self._max_leaf * fill))
        # Reuse the pre-allocated empty root as the first leaf.
        leaves: List[_Node] = [self._load(self._root_page)]
        for start in range(0, len(items), per_leaf):
            chunk = items[start : start + per_leaf]
            if start == 0:
                leaf = leaves[0]
            else:
                leaf = self._new_node(is_leaf=True)
                leaves[-1].next_leaf = leaf.page_id
                leaves.append(leaf)
            leaf.keys = [key for key, _v in chunk]
            leaf.values = [value for _k, value in chunk]
        # Avoid a pathologically small last leaf (borrow one entry).
        if len(leaves) > 1 and len(leaves[-1].keys) < 2:
            donor = leaves[-2]
            leaves[-1].keys.insert(0, donor.keys.pop())
            leaves[-1].values.insert(0, donor.values.pop())
        for leaf in leaves:
            self._save(leaf)

        # Stack internal levels until a single root remains.
        level: List[Tuple[int, int]] = [
            (leaf.page_id, leaf.keys[0]) for leaf in leaves
        ]
        per_internal = max(2, self._max_internal)
        while len(level) > 1:
            next_level: List[Tuple[int, int]] = []
            for start in range(0, len(level), per_internal + 1):
                group = level[start : start + per_internal + 1]
                if len(group) == 1 and next_level:
                    # Fold a lone straggler into the previous parent.
                    parent = self._load(next_level[-1][0])
                    parent.keys.append(group[0][1])
                    parent.children.append(group[0][0])
                    self._save(parent)
                    continue
                node = self._new_node(is_leaf=False)
                node.children = [page for page, _k in group]
                node.keys = [k for _page, k in group[1:]]
                self._save(node)
                next_level.append((node.page_id, group[0][1]))
            level = next_level
        self._root_page = level[0][0]
        self._size = len(items)

    # -- deletion --------------------------------------------------------------------

    def delete(self, key: int, value: Optional[bytes] = None) -> None:
        """Remove one entry with ``key`` (and ``value``, if given).

        Raises :class:`KeyNotFoundError` when no matching entry exists.
        Underflowing nodes borrow from or merge with siblings, so the
        tree stays balanced under mixed workloads.
        """
        removed = self._delete_from(self._root_page, key, value)
        if not removed:
            raise KeyNotFoundError(f"key {key} not found")
        self._size -= 1
        root = self._load(self._root_page)
        if not root.is_leaf and len(root.children) == 1:
            self._root_page = root.children[0]

    def _min_leaf(self) -> int:
        return (self._max_leaf + 1) // 2

    def _min_internal(self) -> int:
        return (self._max_internal + 1) // 2

    def _delete_from(
        self, page_id: int, key: int, value: Optional[bytes]
    ) -> bool:
        node = self._load(page_id)
        if node.is_leaf:
            index = bisect_left(node.keys, key)
            while index < len(node.keys) and node.keys[index] == key:
                if value is None or node.values[index] == value:
                    del node.keys[index]
                    del node.values[index]
                    self._save(node)
                    return True
                index += 1
            return False
        # Start at the leftmost child that can hold the key and walk
        # right while the separator still equals the key (duplicates
        # may straddle several children).
        index = bisect_left(node.keys, key)
        while True:
            child_page = node.children[index]
            if self._delete_from(child_page, key, value):
                self._rebalance_child(node, index)
                return True
            if index < len(node.keys) and node.keys[index] == key:
                index += 1
                continue
            return False

    def _rebalance_child(self, parent: _Node, index: int) -> None:
        child = self._load(parent.children[index])
        min_keys = self._min_leaf() if child.is_leaf else self._min_internal()
        if len(child.keys) >= min_keys or parent.children == [child.page_id]:
            return
        left = self._load(parent.children[index - 1]) if index > 0 else None
        right = (
            self._load(parent.children[index + 1])
            if index + 1 < len(parent.children)
            else None
        )
        if left is not None and len(left.keys) > min_keys:
            self._borrow_from_left(parent, index, left, child)
        elif right is not None and len(right.keys) > min_keys:
            self._borrow_from_right(parent, index, child, right)
        elif left is not None:
            self._merge(parent, index - 1, left, child)
        elif right is not None:
            self._merge(parent, index, child, right)
        self._save(parent)

    def _borrow_from_left(
        self, parent: _Node, index: int, left: _Node, child: _Node
    ) -> None:
        if child.is_leaf:
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[index - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[index - 1])
            parent.keys[index - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())
        self._save(left)
        self._save(child)

    def _borrow_from_right(
        self, parent: _Node, index: int, child: _Node, right: _Node
    ) -> None:
        if child.is_leaf:
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[index] = right.keys[0]
        else:
            child.keys.append(parent.keys[index])
            parent.keys[index] = right.keys.pop(0)
            child.children.append(right.children.pop(0))
        self._save(right)
        self._save(child)

    def _merge(
        self, parent: _Node, left_index: int, left: _Node, right: _Node
    ) -> None:
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[left_index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        del parent.keys[left_index]
        del parent.children[left_index + 1]
        self._save(left)

    # -- validation (for tests) --------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert structural invariants; raises :class:`StorageError` on violation."""
        leaves: List[int] = []
        self._check_node(self._root_page, None, None, leaves, is_root=True)
        # Leaf chain must visit exactly the leaves, left to right.
        node = self._load(self._root_page)
        while not node.is_leaf:
            node = self._load(node.children[0])
        chained: List[int] = []
        keys: List[int] = []
        while True:
            chained.append(node.page_id)
            keys.extend(node.keys)
            if node.next_leaf is None:
                break
            node = self._load(node.next_leaf)
        if chained != leaves:
            raise StorageError("leaf chain does not match tree leaves")
        if keys != sorted(keys):
            raise StorageError("leaf keys are not globally sorted")
        if len(keys) != self._size:
            raise StorageError(
                f"size counter {self._size} != {len(keys)} stored keys"
            )

    def _check_node(
        self,
        page_id: int,
        low: Optional[int],
        high: Optional[int],
        leaves: List[int],
        is_root: bool = False,
    ) -> int:
        node = self._load(page_id)
        if node.keys != sorted(node.keys):
            raise StorageError(f"node {page_id} keys out of order")
        for key in node.keys:
            if low is not None and key < low:
                raise StorageError(f"node {page_id} violates lower bound")
            if high is not None and key > high:
                raise StorageError(f"node {page_id} violates upper bound")
        if node.is_leaf:
            leaves.append(page_id)
            return 1
        if len(node.children) != len(node.keys) + 1:
            raise StorageError(f"node {page_id} child count mismatch")
        depths = set()
        bounds = [low] + list(node.keys) + [high]
        for i, child in enumerate(node.children):
            depths.add(
                self._check_node(child, bounds[i], bounds[i + 1], leaves)
            )
        if len(depths) != 1:
            raise StorageError(f"node {page_id} has uneven subtree depths")
        return depths.pop() + 1

    def __repr__(self) -> str:
        return (
            f"BTree(name={self.name!r}, size={self._size}, "
            f"height={self.height}, unique={self.unique})"
        )
