"""Buffer manager: fix/unfix interface with LRU replacement.

Volcano "includes a file system with heap files, B-trees, and buffer
management" (Section 3); every page access in this repository goes
through this buffer manager.  Two paper-specific concerns shape it:

* **Pinning as reference counting.**  Section 5 requires that "the
  shared component remains in memory as long as there is at least one
  valid reference to it … e.g., through reference counting.  After a
  component is no longer referenced, it is subject to replacement using
  buffer replacement policies."  ``fix``/``unfix`` are exactly that
  reference count; the assembly operator holds a fix per in-window
  referrer of a shared component's page.

* **Buffer hits are not free.**  Footnote 4 observes that even buffer
  hits cost a guarded table lookup.  The stats therefore count hits and
  faults separately so benchmarks can report both (Figure 15 notes that
  sharing statistics reduce *total reads*, i.e. faults).
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.errors import BufferFullError, PinError
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page


@dataclass
class BufferStats:
    """Buffer-traffic accounting."""

    fixes: int = 0
    hits: int = 0
    faults: int = 0
    evictions: int = 0
    #: Faults on pages that were resident earlier and got evicted —
    #: the wasted work Figure 15's sharing statistics avoid.
    re_reads: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of fixes served without disk I/O."""
        if self.fixes == 0:
            return 0.0
        return self.hits / self.fixes


class _Frame:
    """One buffered page plus its pin count."""

    __slots__ = ("page", "pin_count", "dirty", "referenced")

    def __init__(self, page: Page) -> None:
        self.page = page
        self.pin_count = 0
        self.dirty = False
        # Clock policy's reference bit (second chance).
        self.referenced = True


class BufferManager:
    """A pool of page frames over a :class:`SimulatedDisk`.

    ``capacity`` is the number of frames; ``None`` means unbounded,
    which the paper's main experiments use ("There is enough buffer
    space to hold the largest database, so no page replacement
    occurs").  The restricted-buffer ablation passes a finite capacity.

    Replacement (over unpinned frames only) is selectable:

    * ``policy="lru"`` (default) — least-recently-used, tracked by
      access order;
    * ``policy="clock"`` — the classic second-chance sweep: a hand
      cycles the frames clearing reference bits, evicting the first
      unreferenced, unpinned frame it meets.  Near-LRU behaviour at
      O(1) bookkeeping per hit, which is why real buffer managers
      (including the systems of the paper's era) prefer it.

    A ``fix`` pins the frame (incrementing its pin count); ``unfix``
    releases one pin.  Evicting is only legal for frames with pin
    count zero.
    """

    #: accepted replacement policies.
    POLICIES = ("lru", "clock")

    def __init__(
        self,
        disk: SimulatedDisk,
        capacity: Optional[int] = None,
        policy: str = "lru",
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise BufferFullError("buffer capacity must be positive")
        if policy not in self.POLICIES:
            raise BufferFullError(
                f"policy must be one of {self.POLICIES}, got {policy!r}"
            )
        self._disk = disk
        self._capacity = capacity
        self.policy = policy
        # Insertion order doubles as LRU order for unpinned frames;
        # move_to_end on access keeps it current.  The clock policy
        # uses the same ordered dict as its circular frame list.
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        # Clock hand: the page id the next sweep examines first.
        # Persists across evictions, which is what gives re-referenced
        # frames their second chance.
        self._clock_hand_page: Optional[int] = None
        self._ever_resident: Set[int] = set()
        self._pinned_count = 0
        self._reserved_frames = 0
        self.stats = BufferStats()

    # -- introspection --------------------------------------------------------

    @property
    def capacity(self) -> Optional[int]:
        """Frame limit, or ``None`` when unbounded."""
        return self._capacity

    @property
    def resident_pages(self) -> int:
        """Number of pages currently buffered."""
        return len(self._frames)

    @property
    def pinned_pages(self) -> int:
        """Number of pages with at least one pin (O(1))."""
        return self._pinned_count

    def pin_count(self, page_id: int) -> int:
        """Current pin count of ``page_id`` (0 if not resident)."""
        frame = self._frames.get(page_id)
        return frame.pin_count if frame else 0

    def is_resident(self, page_id: int) -> bool:
        """Is the page in the pool right now?"""
        return page_id in self._frames

    # -- reservations (admission-control budget) ------------------------------

    @property
    def reserved_frames(self) -> int:
        """Frames promised to admitted-but-running pinning workloads."""
        return self._reserved_frames

    def unreserved_capacity(self) -> Optional[int]:
        """Frames still reservable (``None`` on an unbounded pool)."""
        if self._capacity is None:
            return None
        return self._capacity - self._reserved_frames

    def reserve(self, n_frames: int) -> None:
        """Promise ``n_frames`` to a future pinning workload.

        Reservations are an accounting ledger for admission control
        (the assembly service reserves each query's worst-case pin
        bound before letting it run); they do not themselves pin or
        evict frames.  Over-reserving a bounded pool raises
        :class:`BufferFullError` so the caller can queue or shrink the
        workload instead.
        """
        if n_frames < 0:
            raise BufferFullError("cannot reserve a negative frame count")
        if (
            self._capacity is not None
            and self._reserved_frames + n_frames > self._capacity
        ):
            raise BufferFullError(
                f"reserving {n_frames} frames would exceed capacity "
                f"{self._capacity} ({self._reserved_frames} already reserved)"
            )
        self._reserved_frames += n_frames

    def unreserve(self, n_frames: int) -> None:
        """Return frames reserved with :meth:`reserve`."""
        if n_frames < 0 or n_frames > self._reserved_frames:
            raise BufferFullError(
                f"cannot unreserve {n_frames} of "
                f"{self._reserved_frames} reserved frames"
            )
        self._reserved_frames -= n_frames

    # -- replacement ------------------------------------------------------------

    def _evict_one(self) -> None:
        if self.policy == "clock":
            self._evict_clock()
        else:
            self._evict_lru()

    def _drop_frame(self, page_id: int) -> None:
        frame = self._frames[page_id]
        if frame.dirty:
            self._disk.write(frame.page)
        del self._frames[page_id]
        self.stats.evictions += 1

    def _evict_lru(self) -> None:
        for page_id, frame in self._frames.items():
            if frame.pin_count == 0:
                self._drop_frame(page_id)
                return
        raise BufferFullError(
            f"all {len(self._frames)} frames are pinned; cannot evict"
        )

    def _evict_clock(self) -> None:
        """Second-chance sweep: clear reference bits until a victim."""
        pages = list(self._frames)
        if not pages:
            raise BufferFullError("no frames to evict")
        start = 0
        if self._clock_hand_page is not None:
            try:
                start = pages.index(self._clock_hand_page)
            except ValueError:
                start = 0  # the hand's page was dropped; restart
        # Two full sweeps suffice: the first clears reference bits,
        # the second must find an unreferenced frame unless all pinned.
        n = len(pages)
        for step in range(2 * n):
            index = (start + step) % n
            frame = self._frames[pages[index]]
            if frame.pin_count > 0:
                continue
            if frame.referenced:
                frame.referenced = False
                continue
            # Park the hand on the frame after the victim (the victim
            # itself is about to disappear from the frame list).
            self._clock_hand_page = (
                pages[(index + 1) % n] if n > 1 else None
            )
            if self._clock_hand_page == pages[index]:
                self._clock_hand_page = None
            self._drop_frame(pages[index])
            return
        raise BufferFullError(
            f"all {len(self._frames)} frames are pinned; cannot evict"
        )

    def _ensure_room(self) -> None:
        if self._capacity is None:
            return
        while len(self._frames) >= self._capacity:
            self._evict_one()

    # -- fix / unfix ---------------------------------------------------------------

    def fix(self, page_id: int) -> Page:
        """Pin ``page_id`` in the pool and return its page.

        The caller must balance every ``fix`` with an ``unfix``.  The
        returned :class:`Page` object stays valid until the final unfix.
        """
        stats = self.stats
        stats.fixes += 1
        frame = self._frames.get(page_id)
        if frame is not None:
            stats.hits += 1
            frame.referenced = True
            if self.policy == "lru":
                self._frames.move_to_end(page_id)
        else:
            stats.faults += 1
            if page_id in self._ever_resident:
                stats.re_reads += 1
            self._ensure_room()
            frame = _Frame(self._disk.read(page_id))
            self._frames[page_id] = frame
            self._ever_resident.add(page_id)
        if frame.pin_count == 0:
            self._pinned_count += 1
        frame.pin_count += 1
        return frame.page

    def fix_many(self, page_ids: Sequence[int]) -> Dict[int, Page]:
        """Pin a batch of pages, batching the disk reads.

        Semantically this is one :meth:`fix` per entry of ``page_ids``
        (duplicates take one pin per occurrence, and the stats come out
        identical: one fault per absent page, hits for the rest) — but
        all absent pages are faulted through a single
        :meth:`~repro.storage.disk.SimulatedDisk.read_batch`, so ids
        that are physically contiguous cost one seek.  Pass the ids in
        sweep order; the disk coalesces from that order.

        Admission is **atomic** against the pin bound: if the pool
        cannot hold every requested page simultaneously alongside the
        frames other callers have pinned, :class:`BufferFullError` is
        raised before any pin is taken or frame evicted, so a rejected
        batch leaves the pool exactly as it found it.  Returns a map
        of page id to page.
        """
        distinct: List[int] = []
        seen: Set[int] = set()
        seen_add = seen.add
        distinct_append = distinct.append
        for page_id in page_ids:
            if page_id not in seen:
                seen_add(page_id)
                distinct_append(page_id)
        if self._capacity is not None:
            immovable = sum(
                1
                for pid, frame in self._frames.items()
                if frame.pin_count > 0 and pid not in seen
            )
            if immovable + len(distinct) > self._capacity:
                raise BufferFullError(
                    f"batch of {len(distinct)} pages cannot be pinned "
                    f"alongside {immovable} already-pinned frames "
                    f"(capacity {self._capacity})"
                )
        # Pin the already-resident request pages first so the evictions
        # for the absent ones cannot victimize them.
        missing: List[int] = []
        pages: Dict[int, Page] = {}
        for page_id in distinct:
            if page_id in self._frames:
                pages[page_id] = self.fix(page_id)
            else:
                missing.append(page_id)
        if missing:
            if self._capacity is not None:
                while len(self._frames) + len(missing) > self._capacity:
                    self._evict_one()
            try:
                batch = self._disk.read_batch(missing)
            except Exception:
                # The batch read failed (e.g. an injected fault): give
                # back the pins taken on the resident pages above so a
                # rejected batch still leaves the pool balanced.
                for page_id in pages:
                    self.unfix(page_id)
                raise
            stats = self.stats
            frames = self._frames
            ever_resident = self._ever_resident
            for page in batch:
                page_id = page.page_id
                stats.fixes += 1
                stats.faults += 1
                if page_id in ever_resident:
                    stats.re_reads += 1
                frame = _Frame(page)
                frame.pin_count = 1
                self._pinned_count += 1
                frames[page_id] = frame
                ever_resident.add(page_id)
                pages[page_id] = page
        # Remaining occurrences beyond the first are plain hits (the
        # Counter pass is skipped entirely when every id was distinct,
        # which is the common case on the sweep path).
        if len(seen) != len(page_ids):
            counts = Counter(page_ids)
            for page_id, occurrences in counts.items():
                for _ in range(occurrences - 1):
                    self.fix(page_id)
        return pages

    def unfix(self, page_id: int, dirty: bool = False) -> None:
        """Release one pin on ``page_id``; mark dirty if it was modified."""
        frame = self._frames.get(page_id)
        if frame is None or frame.pin_count == 0:
            raise PinError(f"page {page_id} is not fixed")
        frame.pin_count -= 1
        if frame.pin_count == 0:
            self._pinned_count -= 1
        if dirty:
            frame.dirty = True

    @contextmanager
    def fixed(self, page_id: int, dirty: bool = False) -> Iterator[Page]:
        """Context manager pairing :meth:`fix` and :meth:`unfix`."""
        page = self.fix(page_id)
        try:
            yield page
        finally:
            self.unfix(page_id, dirty=dirty)

    # -- write-back -----------------------------------------------------------------

    def flush_all(self) -> None:
        """Write every dirty frame back to disk (frames stay resident)."""
        for frame in self._frames.values():
            if frame.dirty:
                self._disk.write(frame.page)
                frame.dirty = False

    def drop_clean(self) -> None:
        """Flush, then drop every unpinned frame.

        Benchmarks call this between the load and measure phases so
        measurement starts from a cold buffer, as the paper's runs do.
        """
        self.flush_all()
        for page_id in [
            pid for pid, f in self._frames.items() if f.pin_count == 0
        ]:
            del self._frames[page_id]

    def reset_stats(self) -> None:
        """Zero the counters (resident pages are untouched)."""
        self.stats = BufferStats()
        self._ever_resident = set(self._frames)

    def __repr__(self) -> str:
        cap = "unbounded" if self._capacity is None else str(self._capacity)
        return (
            f"BufferManager(capacity={cap}, resident={len(self._frames)}, "
            f"pinned={self.pinned_pages})"
        )
