"""Event-driven elapsed time: each device an independent server.

The synchronous stack advances one read at a time — K devices deliver
zero concurrency, and elapsed time degenerates to the *sum* of every
read's service time.  The paper's Section 7 sketch ("a server-per-device
architecture … asynchronous I/O") and the declustering literature both
say the real win of multiple spindles is parallel service: this module
supplies the missing clock.

:class:`AsyncIOEngine` wraps any :class:`~repro.storage.disk.
SimulatedDisk` (including :class:`~repro.storage.costmodel.CostedDisk`
and :class:`~repro.storage.multidisk.MultiDeviceDisk`).  A caller
*issues* an I/O request against one device: the request's physical
reads execute immediately (the simulation has no data latency — only
time is modelled), are priced read-by-read under a
:class:`~repro.storage.costmodel.CostModel`, and the request is
scheduled to *complete* at::

    max(now, device busy-until) + sum(run_service_time(...) per read)

A completion heap orders requests across devices; :meth:`wait_next`
pops the earliest one and advances the clock to it.  Elapsed time is
therefore ``max`` over device timelines plus any exposed CPU
(:meth:`spend_cpu`), not ``sum`` over reads.

Exactness invariant (property-tested): with **one device, issue depth
1, batch 1**, requests serialize perfectly — every ``complete`` is the
previous ``complete`` plus one ``run_service_time`` term, the same
left-to-right float summation :class:`CostedDisk` performs — so
``engine.elapsed`` equals the synchronous ``service_time_total``
bit-for-bit.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import DiskError
from repro.storage.costmodel import CostModel
from repro.storage.disk import SimulatedDisk
from repro.storage.multidisk import MultiDeviceDisk


class EventClock:
    """A monotone simulation clock, in milliseconds."""

    __slots__ = ("_now",)

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move time forward; moving it backward is a logic error."""
        if when < self._now:
            raise DiskError(
                f"event clock cannot run backwards "
                f"({self._now:.3f} -> {when:.3f})"
            )
        self._now = when


class EventQueue:
    """A deterministic timer heap for simulated-time callbacks.

    The service fabric schedules open-loop *arrivals* and *hedge
    timers* on the event clock; this queue orders them.  Entries are
    ``(when, payload)`` pairs; ties break by insertion order, so two
    identical runs deliver identical event sequences.  :meth:`cancel`
    marks an entry dead without disturbing the heap (lazy deletion —
    the entry is skipped when it surfaces), which is how a hedge timer
    is retired when its request completes before the delay expires.
    """

    __slots__ = ("_heap", "_next_handle", "_cancelled")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Any]] = []
        self._next_handle = 0
        self._cancelled: set = set()

    def __len__(self) -> int:
        """Live (scheduled, not cancelled) entries."""
        return len(self._heap) - len(self._cancelled)

    def schedule(self, when: float, payload: Any) -> int:
        """Enqueue ``payload`` at simulated time ``when``; its handle."""
        if when < 0:
            raise DiskError("cannot schedule an event before time zero")
        handle = self._next_handle
        self._next_handle += 1
        heapq.heappush(self._heap, (when, handle, payload))
        return handle

    def cancel(self, handle: int) -> None:
        """Retire one scheduled event (idempotent; unknown is an error)."""
        if not 0 <= handle < self._next_handle:
            raise DiskError(f"unknown event handle {handle}")
        self._cancelled.add(handle)

    def _drop_dead(self) -> None:
        while self._heap and self._heap[0][1] in self._cancelled:
            _when, handle, _payload = heapq.heappop(self._heap)
            self._cancelled.discard(handle)

    def next_time(self) -> Optional[float]:
        """Timestamp of the earliest live event (None when empty)."""
        self._drop_dead()
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the earliest live ``(when, payload)``."""
        self._drop_dead()
        if not self._heap:
            raise DiskError("pop() on an empty event queue")
        when, _handle, payload = heapq.heappop(self._heap)
        return when, payload


class InFlightIO:
    """One asynchronous I/O request, from issue to completion.

    ``payload`` is whatever the issuer attached (the pipelined drivers
    carry ``(refs, pinned_pages)``); the engine never looks inside it.
    A request with ``physical_reads == 0`` (every page was already
    buffer-resident) completes at its issue time without occupying the
    device — modelling CPU-side work overlapping the in-flight reads.
    """

    __slots__ = (
        "handle",
        "device",
        "payload",
        "physical_reads",
        "pages_read",
        "issue_time",
        "start_time",
        "complete_time",
    )

    def __init__(
        self,
        handle: int,
        device: int,
        payload: Any = None,
        physical_reads: int = 0,
        pages_read: int = 0,
        issue_time: float = 0.0,
        start_time: float = 0.0,
        complete_time: float = 0.0,
    ) -> None:
        self.handle = handle
        self.device = device
        self.payload = payload
        self.physical_reads = physical_reads
        self.pages_read = pages_read
        self.issue_time = issue_time
        self.start_time = start_time
        self.complete_time = complete_time

    @property
    def service_time(self) -> float:
        """Milliseconds the device worked on this request."""
        return self.complete_time - self.start_time

    def __repr__(self) -> str:
        return (
            f"InFlightIO(handle={self.handle}, device={self.device}, "
            f"physical_reads={self.physical_reads}, "
            f"pages={self.pages_read}, "
            f"start={self.start_time:.3f}, "
            f"complete={self.complete_time:.3f})"
        )


class AsyncIOEngine:
    """Per-device busy/idle timelines over a simulated disk.

    Parameters
    ----------
    disk:
        The disk to observe.  A :class:`MultiDeviceDisk` yields one
        timeline per device; any other :class:`SimulatedDisk` is one
        device.
    cost_model:
        Pricing for physical reads (default: the A-9 period model).
        Pass a :class:`CostedDisk`'s own model to keep the engine's
        clock and the disk's synchronous accumulator in agreement.
    spans:
        Optional :class:`~repro.obs.spans.SpanRecorder`.  Each request
        that touched a device is recorded as a completed ``device-io``
        span with its exact issue/start/complete stamps — purely
        observational: the engine's scheduling, pricing and clock are
        byte-for-byte identical with or without a recorder attached.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        cost_model: Optional[CostModel] = None,
        spans: Optional[Any] = None,
    ) -> None:
        self.disk = disk
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.spans = spans
        self.clock = EventClock()
        if isinstance(disk, MultiDeviceDisk):
            self.n_devices = disk.n_devices
        else:
            self.n_devices = 1
        self._busy_until: List[float] = [0.0] * self.n_devices
        self._busy_time: List[float] = [0.0] * self.n_devices
        self._in_flight: List[int] = [0] * self.n_devices
        self._completions: List[Tuple[float, int, InFlightIO]] = []
        self._next_handle = 0
        #: requests issued (including zero-read completions).
        self.issues = 0
        #: issued requests that touched no device (all pages resident).
        self.zero_read_issues = 0
        #: milliseconds of exposed CPU charged via :meth:`spend_cpu`.
        self.cpu_time = 0.0
        #: milliseconds the driver idled waiting for quarantined
        #: devices to recover (:meth:`wait_until`).
        self.wait_time = 0.0
        # A fault injector's down intervals should run on *this* clock,
        # not its synchronous op counter, once an engine drives the disk.
        injector = getattr(disk, "fault_injector", None)
        if injector is not None:
            injector.bind_clock(lambda: self.clock.now)

    # -- geometry ------------------------------------------------------------

    def device_of(self, page_id: int) -> int:
        """Which timeline a page belongs to."""
        if isinstance(self.disk, MultiDeviceDisk):
            return self.disk.device_of(page_id)
        return 0

    def in_flight(self, device: Optional[int] = None) -> int:
        """Outstanding requests on one device (or overall)."""
        if device is None:
            return sum(self._in_flight)
        return self._in_flight[device]

    def idle(self) -> bool:
        """No request outstanding on any device?"""
        return not self._completions

    # -- issue / complete ----------------------------------------------------

    def issue(
        self,
        device: int,
        io_fn: Optional[Callable[[], Any]] = None,
        payload: Any = None,
    ) -> InFlightIO:
        """Issue one request: run its reads now, complete them later.

        ``io_fn`` performs the request's physical reads (typically a
        ``buffer.fix_many``); every read it triggers is captured through
        the disk's I/O listener and priced with
        :meth:`CostModel.run_service_time`.  The request starts when
        the device frees up (``max(now, busy_until)``) and completes
        after its summed service time; a request that triggered no
        physical read completes at ``now`` without occupying the
        device.  If ``io_fn`` raises, nothing is scheduled and the
        exception propagates (``fix_many``'s admission check raises
        before touching any frame, so accounting stays consistent).
        """
        if not 0 <= device < self.n_devices:
            raise DiskError(f"no device {device}")
        reads: List[Tuple[int, int]] = []
        injector = getattr(self.disk, "fault_injector", None)
        injected_before = (
            injector.injected_ms_total if injector is not None else 0.0
        )
        previous = self.disk.set_io_listener(
            lambda distance, n_pages: reads.append((distance, n_pages))
        )
        try:
            if io_fn is not None:
                io_fn()
        finally:
            self.disk.set_io_listener(previous)
        # Latency spikes and retry backoffs injected while this
        # request's reads ran occupy the issuing device's timeline.
        injected = (
            injector.injected_ms_total - injected_before
            if injector is not None
            else 0.0
        )
        issue_time = self.clock.now
        pages_total = 0
        if reads or injected:
            start = max(issue_time, self._busy_until[device])
            # Accumulate left-to-right, one term per physical read, so a
            # serialized schedule reproduces CostedDisk's float sum exactly.
            complete = start
            run_service_time = self.cost_model.run_service_time
            for distance, n_pages in reads:
                complete += run_service_time(distance, n_pages)
                pages_total += n_pages
            if injected:
                complete += injected
            self._busy_until[device] = complete
            busy = complete - start
            self._busy_time[device] += busy
            self.disk.stats.busy_ms += busy
            if isinstance(self.disk, MultiDeviceDisk):
                self.disk.device_stats[device].busy_ms += busy
        else:
            start = issue_time
            complete = issue_time
            self.zero_read_issues += 1
        handle = self._next_handle
        self._next_handle += 1
        io = InFlightIO(
            handle=handle,
            device=device,
            payload=payload,
            physical_reads=len(reads),
            pages_read=pages_total,
            issue_time=issue_time,
            start_time=start,
            complete_time=complete,
        )
        heapq.heappush(self._completions, (complete, handle, io))
        self._in_flight[device] += 1
        self.issues += 1
        if self.spans is not None and (reads or injected):
            self.spans.add(
                "device-io",
                start=start,
                end=complete,
                kind="device-io",
                device=device,
                handle=handle,
                issue_time=issue_time,
                physical_reads=io.physical_reads,
                pages=io.pages_read,
            )
        return io

    def wait_next(self) -> InFlightIO:
        """Pop the earliest completion, advancing the clock to it.

        A completion scheduled *before* the current time — possible when
        :meth:`spend_cpu` pushed the clock past it — was fully hidden
        behind that CPU work and is delivered immediately, without
        moving the clock.
        """
        if not self._completions:
            raise DiskError("wait_next() with no I/O in flight")
        complete, _handle, io = heapq.heappop(self._completions)
        if complete > self.clock.now:
            self.clock.advance_to(complete)
        self._in_flight[io.device] -= 1
        return io

    def spend_cpu(self, milliseconds: float) -> None:
        """Advance the clock for CPU work; in-flight I/O keeps running.

        This is the "exposed CPU" term of elapsed time: devices already
        issued-to continue toward their scheduled completions while the
        CPU works, which is exactly what issue-ahead depth > 1 buys.
        """
        if milliseconds < 0:
            raise DiskError("cpu time must be non-negative")
        if milliseconds:
            self.clock.advance_to(self.clock.now + milliseconds)
            self.cpu_time += milliseconds

    def wait_until(self, when: float) -> None:
        """Idle the clock forward to ``when`` (no-op if already past).

        Fault-aware drivers use this when every pending device is
        quarantined: nothing can be issued, so simulated time simply
        passes until the earliest circuit breaker reopens.
        """
        if when > self.clock.now:
            self.wait_time += when - self.clock.now
            self.clock.advance_to(when)

    # -- readout -------------------------------------------------------------

    @property
    def elapsed(self) -> float:
        """Simulated milliseconds since the engine started."""
        return self.clock.now

    def busy_time(self, device: Optional[int] = None) -> float:
        """Milliseconds one device (or all of them, summed) served I/O."""
        if device is None:
            return sum(self._busy_time)
        return self._busy_time[device]

    def utilization(self, device: int) -> float:
        """Busy fraction of one device's timeline (0.0 before any I/O)."""
        if self.clock.now == 0.0:
            return 0.0
        return self._busy_time[device] / self.clock.now

    def utilizations(self) -> List[float]:
        """Per-device busy fractions."""
        return [self.utilization(d) for d in range(self.n_devices)]

    def __repr__(self) -> str:
        return (
            f"AsyncIOEngine(devices={self.n_devices}, "
            f"now={self.clock.now:.1f}ms, in_flight={sum(self._in_flight)})"
        )
