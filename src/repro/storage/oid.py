"""Logical object identifiers and the OID directory.

The paper (footnote 1) requires only "a mapping from object reference to
physical location" — object identifiers are *logical*.  An :class:`Oid`
is a (type id, serial) pair encoded in ten bytes, which together with
four 32-bit integers makes the 96-byte benchmark object of Section 6:

    4 * 4 bytes (integers) + 8 * 10 bytes (references) = 96 bytes.

The :class:`OidDirectory` maps each OID to its physical address, a
:class:`Rid` (page id, slot number).  The assembly operator consults the
directory to learn the physical page of an unresolved reference, which
is what elevator scheduling orders fetches by.
"""

from __future__ import annotations

import struct
from functools import lru_cache
from typing import Dict, Iterator, NamedTuple, Optional

from repro.errors import DuplicateOidError, RecordError, UnknownOidError

#: On-disk size of one encoded OID, in bytes.
OID_SIZE = 10

_OID_STRUCT = struct.Struct(">HQ")


@lru_cache(maxsize=1 << 16)
def _encode_oid(type_id: int, serial: int) -> bytes:
    """Cached ``struct`` pack of one OID (OIDs repeat across records)."""
    try:
        return _OID_STRUCT.pack(type_id, serial)
    except struct.error as exc:
        raise RecordError(
            f"cannot encode OID {Oid(type_id, serial)!r}: {exc}"
        ) from exc


class Oid(NamedTuple):
    """A logical object identifier: ``(type_id, serial)``.

    ``type_id`` identifies the object's type (class); ``serial`` is
    unique within the type.  The all-zero OID is the null reference.
    """

    type_id: int
    serial: int

    def is_null(self) -> bool:
        """Return ``True`` for the null reference."""
        return self.type_id == 0 and self.serial == 0

    def encode(self) -> bytes:
        """Serialize to :data:`OID_SIZE` bytes (big-endian)."""
        return _encode_oid(self.type_id, self.serial)

    @classmethod
    def decode(cls, data: bytes) -> "Oid":
        """Deserialize an OID from exactly :data:`OID_SIZE` bytes."""
        if len(data) != OID_SIZE:
            raise RecordError(
                f"OID must be {OID_SIZE} bytes, got {len(data)}"
            )
        return cls._make(_OID_STRUCT.unpack(data))

    def __str__(self) -> str:
        if self.is_null():
            return "OID<null>"
        return f"OID<{self.type_id}:{self.serial}>"


#: The null object reference.
NULL_OID = Oid(0, 0)


class Rid(NamedTuple):
    """A physical record identifier: ``(page_id, slot)``."""

    page_id: int
    slot: int

    def __str__(self) -> str:
        return f"RID<{self.page_id}.{self.slot}>"


class OidDirectory:
    """Mapping from logical OIDs to physical record addresses.

    This is the system component the paper's footnote 1 postulates.  It
    is deliberately a plain in-memory map: the experiments measure disk
    seeks for *object* pages, and real systems keep this structure (or a
    hashed OID index) cached.
    """

    def __init__(self) -> None:
        self._entries: Dict[Oid, Rid] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, oid: Oid) -> bool:
        return oid in self._entries

    def __iter__(self) -> Iterator[Oid]:
        return iter(self._entries)

    def register(self, oid: Oid, rid: Rid) -> None:
        """Record the physical address of ``oid``.

        Raises :class:`DuplicateOidError` if the OID is already mapped;
        OIDs are immutable identities — an object that physically moves
        goes through :meth:`relocate`, never a re-registration.
        """
        if oid.is_null():
            raise UnknownOidError("cannot register the null OID")
        if oid in self._entries:
            raise DuplicateOidError(f"{oid} already registered")
        self._entries[oid] = rid

    def lookup(self, oid: Oid) -> Rid:
        """Return the physical address of ``oid``.

        Raises :class:`UnknownOidError` for unmapped or null OIDs.
        """
        try:
            return self._entries[oid]
        except KeyError:
            raise UnknownOidError(f"{oid} is not registered") from None

    def relocate(self, oid: Oid, rid: Rid) -> Rid:
        """Point an *existing* OID at a new physical address.

        Online reorganization (:mod:`repro.cluster.reorg`) is the one
        sanctioned way an object moves: its logical identity is
        untouched, only the directory's physical mapping changes, which
        is exactly the indirection footnote 1 postulates.  Returns the
        previous address; raises :class:`UnknownOidError` when the OID
        was never registered (relocation cannot create objects).
        """
        previous = self.lookup(oid)
        self._entries[oid] = rid
        return previous

    def get(self, oid: Oid) -> Optional[Rid]:
        """Like :meth:`lookup` but returns ``None`` when unmapped."""
        return self._entries.get(oid)

    def page_of(self, oid: Oid) -> int:
        """Return just the page id of ``oid`` (elevator scheduling key)."""
        return self.lookup(oid).page_id

    def dump(self) -> Dict[Oid, Rid]:
        """A copy of the full OID → RID mapping (snapshot support)."""
        return dict(self._entries)

    def load(self, entries: Dict[Oid, Rid]) -> None:
        """Replace the mapping with a copy of ``entries``.

        Used by harness snapshot/restore to clone a laid-out database
        onto a fresh store without re-registering every object.
        """
        self._entries = dict(entries)
