"""Storage substrate: simulated disk, pages, buffer manager, files, index.

This package is the "file system with heap files, B-trees, and buffer
management" that Volcano provides (paper, Section 3), built over a
seek-accounting :class:`~repro.storage.disk.SimulatedDisk` — the
measurement instrument behind every figure in Section 6.
"""

from repro.storage.btree import BTree
from repro.storage.buffer import BufferManager, BufferStats
from repro.storage.disk import DiskStats, Extent, SimulatedDisk
from repro.storage.events import AsyncIOEngine, EventClock, InFlightIO
from repro.storage.faults import (
    DeviceHealthTracker,
    DownInterval,
    FaultConfig,
    FaultInjector,
    FaultStats,
    RetryPolicy,
)
from repro.storage.heap import HeapFile
from repro.storage.multidisk import MultiDeviceDisk
from repro.storage.snapshot import load_store, save_store
from repro.storage.oid import NULL_OID, OID_SIZE, Oid, OidDirectory, Rid
from repro.storage.page import PAGE_SIZE, Page, records_per_page
from repro.storage.record import (
    OBJECT_PAYLOAD_SIZE,
    PAPER_FORMAT,
    ObjectRecord,
    RecordFormat,
)
from repro.storage.store import ObjectStore, PagePlanner

__all__ = [
    "AsyncIOEngine",
    "BTree",
    "BufferManager",
    "BufferStats",
    "DeviceHealthTracker",
    "DiskStats",
    "DownInterval",
    "EventClock",
    "Extent",
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "HeapFile",
    "RetryPolicy",
    "InFlightIO",
    "MultiDeviceDisk",
    "NULL_OID",
    "OBJECT_PAYLOAD_SIZE",
    "OID_SIZE",
    "Oid",
    "OidDirectory",
    "ObjectRecord",
    "ObjectStore",
    "PAGE_SIZE",
    "PAPER_FORMAT",
    "Page",
    "PagePlanner",
    "RecordFormat",
    "Rid",
    "SimulatedDisk",
    "load_store",
    "records_per_page",
    "save_store",
]
