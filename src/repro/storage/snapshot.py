"""Store snapshots: persist a laid-out database to a file.

Laying out and loading a large benchmark database is the slow part of
an experiment; a snapshot lets a layout be built once and reopened many
times (and shipped alongside results for exact reproduction).  The
format is a small, versioned binary file:

* header — magic, version, disk kind (single or multi-device), disk
  geometry, allocation cursor(s);
* pages — ``(page_id, 1 KB image)`` for every materialized page;
* directory — ``(oid, page, slot)`` for every stored object.

Only durable state is saved: buffer contents and statistics are
runtime artifacts and start fresh on load.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import List, Optional, Union

from repro.errors import StorageError
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.multidisk import MultiDeviceDisk
from repro.storage.oid import OID_SIZE, Oid, Rid
from repro.storage.page import PAGE_SIZE
from repro.storage.record import RecordFormat
from repro.storage.store import ObjectStore

_MAGIC = b"RPRO"
_VERSION = 1
_KIND_SINGLE = 0
_KIND_MULTI = 1

_HEADER = struct.Struct(">4sHBxiiII")  # magic, ver, kind, limit, next/dev, n?, counts
_PAGE_ENTRY = struct.Struct(">I")
_DIR_ENTRY = struct.Struct(">IH")
_FMT = struct.Struct(">HH")


def save_store(store: ObjectStore, path: Union[str, Path]) -> Path:
    """Write the store's disk image and OID directory to ``path``."""
    disk = store.disk
    target = Path(path)

    if isinstance(disk, MultiDeviceDisk):
        kind = _KIND_MULTI
        geometry = [disk.n_devices, disk.pages_per_device]
        cursors = list(disk._device_free) + [disk._next_device]
    else:
        kind = _KIND_SINGLE
        geometry = [disk._limit if disk._limit is not None else -1]
        cursors = [disk.allocated_pages]

    store.buffer.flush_all()
    pages = sorted(disk._pages.items())
    directory = [(oid, store.directory.lookup(oid)) for oid in store.directory]

    with open(target, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(struct.pack(">HB", _VERSION, kind))
        handle.write(_FMT.pack(store.fmt.n_ints, store.fmt.n_refs))
        handle.write(struct.pack(">H", len(geometry)))
        for value in geometry:
            handle.write(struct.pack(">i", value))
        handle.write(struct.pack(">H", len(cursors)))
        for value in cursors:
            handle.write(struct.pack(">i", value))
        handle.write(struct.pack(">I", len(pages)))
        for page_id, image in pages:
            handle.write(_PAGE_ENTRY.pack(page_id))
            handle.write(image)
        handle.write(struct.pack(">I", len(directory)))
        for oid, rid in directory:
            handle.write(oid.encode())
            handle.write(_DIR_ENTRY.pack(rid.page_id, rid.slot))
    return target


def load_store(
    path: Union[str, Path],
    buffer_capacity: Optional[int] = None,
) -> ObjectStore:
    """Reopen a snapshot as a fresh store (cold buffer, zero stats)."""
    data = Path(path).read_bytes()
    view = memoryview(data)
    offset = 0

    def take(n: int) -> memoryview:
        nonlocal offset
        if offset + n > len(view):
            raise StorageError("snapshot truncated")
        chunk = view[offset : offset + n]
        offset += n
        return chunk

    if bytes(take(4)) != _MAGIC:
        raise StorageError("not a repro snapshot")
    version, kind = struct.unpack(">HB", take(3))
    if version != _VERSION:
        raise StorageError(f"unsupported snapshot version {version}")
    n_ints, n_refs = _FMT.unpack(take(_FMT.size))

    (n_geometry,) = struct.unpack(">H", take(2))
    geometry = [
        struct.unpack(">i", take(4))[0] for _ in range(n_geometry)
    ]
    (n_cursors,) = struct.unpack(">H", take(2))
    cursors = [struct.unpack(">i", take(4))[0] for _ in range(n_cursors)]

    if kind == _KIND_MULTI:
        disk: SimulatedDisk = MultiDeviceDisk(
            n_devices=geometry[0], pages_per_device=geometry[1]
        )
        disk._device_free = cursors[:-1]
        disk._next_device = cursors[-1]
    elif kind == _KIND_SINGLE:
        limit = None if geometry[0] == -1 else geometry[0]
        disk = SimulatedDisk(n_pages=limit)
        disk._next_free = cursors[0]
    else:
        raise StorageError(f"unknown snapshot disk kind {kind}")

    (n_pages,) = struct.unpack(">I", take(4))
    for _ in range(n_pages):
        (page_id,) = _PAGE_ENTRY.unpack(take(_PAGE_ENTRY.size))
        disk._pages[page_id] = bytes(take(PAGE_SIZE))

    store = ObjectStore(
        disk,
        BufferManager(disk, capacity=buffer_capacity),
        fmt=RecordFormat(n_ints=n_ints, n_refs=n_refs),
    )
    (n_entries,) = struct.unpack(">I", take(4))
    for _ in range(n_entries):
        oid = Oid.decode(bytes(take(OID_SIZE)))
        page_id, slot = _DIR_ENTRY.unpack(take(_DIR_ENTRY.size))
        store.directory.register(oid, Rid(page_id, slot))
    if offset != len(view):
        raise StorageError("snapshot has trailing bytes")
    return store
