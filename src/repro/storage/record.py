"""Record codec for storage-layer objects.

Section 6 of the paper fixes the benchmark object layout:

    "Each object consists of 4 integer and 8 object reference fields
     equaling 96 bytes, resulting in 9 objects per page."

:class:`ObjectRecord` is that object: four signed 32-bit integers plus
eight 10-byte OIDs = 96 bytes of payload.  When stored, a record is
prefixed with its own OID (see :mod:`repro.storage.store`), which is how
scans recover object identity.

The codec is parameterized (``n_ints``, ``n_refs``) so the same record
machinery also serves the Person/Residence example dataset and the
workload generators; the defaults are the paper's geometry.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Sequence, Tuple

from repro.errors import RecordError
from repro.storage.oid import NULL_OID, OID_SIZE, Oid

#: Paper geometry: integer fields per object.
DEFAULT_N_INTS = 4
#: Paper geometry: reference fields per object.
DEFAULT_N_REFS = 8
#: Paper geometry: total payload bytes (4*4 + 8*10 = 96).
OBJECT_PAYLOAD_SIZE = DEFAULT_N_INTS * 4 + DEFAULT_N_REFS * OID_SIZE


@lru_cache(maxsize=None)
def _codec(n_ints: int, n_refs: int) -> Tuple[struct.Struct, struct.Struct]:
    """Precompiled ``(int_struct, refs_struct)`` for one record geometry.

    Compiling a :class:`struct.Struct` per encode/decode call dominated
    the fetch profile; formats are tiny value objects, so one compiled
    pair per distinct ``(n_ints, n_refs)`` geometry serves every record.
    The refs struct packs all OIDs of a record in a single call.
    """
    return (
        struct.Struct(f">{n_ints}i"),
        struct.Struct(">" + "HQ" * n_refs),
    )


@dataclass(frozen=True)
class RecordFormat:
    """Fixed layout of a stored object: ``n_ints`` int32s + ``n_refs`` OIDs."""

    n_ints: int = DEFAULT_N_INTS
    n_refs: int = DEFAULT_N_REFS

    def __post_init__(self) -> None:
        if self.n_ints < 0 or self.n_refs < 0:
            raise RecordError("record format counts must be non-negative")

    @property
    def payload_size(self) -> int:
        """Encoded size in bytes."""
        return self.n_ints * 4 + self.n_refs * OID_SIZE

    def _int_struct(self) -> struct.Struct:
        return _codec(self.n_ints, self.n_refs)[0]

    def encode(self, ints: Sequence[int], refs: Sequence[Oid]) -> bytes:
        """Encode field values into ``payload_size`` bytes."""
        if len(ints) != self.n_ints:
            raise RecordError(
                f"expected {self.n_ints} ints, got {len(ints)}"
            )
        if len(refs) != self.n_refs:
            raise RecordError(
                f"expected {self.n_refs} refs, got {len(refs)}"
            )
        int_struct, refs_struct = _codec(self.n_ints, self.n_refs)
        try:
            head = int_struct.pack(*ints)
        except struct.error as exc:
            raise RecordError(f"integer field out of range: {exc}") from exc
        try:
            flat = [part for ref in refs for part in ref]
            return head + refs_struct.pack(*flat)
        except (struct.error, TypeError):
            # Fall back to per-reference encoding so an out-of-range OID
            # raises the same RecordError (naming the offending OID) the
            # one-at-a-time path always produced.
            return head + b"".join(ref.encode() for ref in refs)

    def decode(self, data: bytes) -> Tuple[Tuple[int, ...], Tuple[Oid, ...]]:
        """Decode ``payload_size`` bytes into ``(ints, refs)`` tuples."""
        if len(data) != self.payload_size:
            raise RecordError(
                f"payload must be {self.payload_size} bytes, got {len(data)}"
            )
        int_struct, refs_struct = _codec(self.n_ints, self.n_refs)
        ints = int_struct.unpack_from(data)
        flat = iter(refs_struct.unpack_from(data, self.n_ints * 4))
        return ints, tuple(map(Oid._make, zip(flat, flat)))


#: The paper's 96-byte object format.
PAPER_FORMAT = RecordFormat()


@dataclass
class ObjectRecord:
    """A decoded storage-layer object: integers plus object references.

    ``refs`` is always exactly ``fmt.n_refs`` long; unused reference
    slots hold :data:`NULL_OID`.
    """

    ints: List[int] = field(default_factory=lambda: [0] * DEFAULT_N_INTS)
    refs: List[Oid] = field(default_factory=lambda: [NULL_OID] * DEFAULT_N_REFS)
    fmt: RecordFormat = PAPER_FORMAT

    def __post_init__(self) -> None:
        if len(self.ints) != self.fmt.n_ints:
            raise RecordError(
                f"record needs {self.fmt.n_ints} ints, got {len(self.ints)}"
            )
        if len(self.refs) != self.fmt.n_refs:
            raise RecordError(
                f"record needs {self.fmt.n_refs} refs, got {len(self.refs)}"
            )

    def encode(self) -> bytes:
        """Serialize the payload (no OID prefix)."""
        return self.fmt.encode(self.ints, self.refs)

    @classmethod
    def decode(cls, data: bytes, fmt: RecordFormat = PAPER_FORMAT) -> "ObjectRecord":
        """Deserialize a payload produced by :meth:`encode`."""
        ints, refs = fmt.decode(data)
        # fmt.decode guarantees the field counts, so the __post_init__
        # length validation is skipped on this (hot) construction path.
        record = cls.__new__(cls)
        record.ints = list(ints)
        record.refs = list(refs)
        record.fmt = fmt
        return record

    def live_refs(self) -> List[Oid]:
        """The non-null references, in slot order."""
        return [ref for ref in self.refs if not ref.is_null()]
