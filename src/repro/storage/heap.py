"""Heap files: append-ordered record files over the simulated disk.

Volcano's file system provides heap files (Section 3); here they back
the relational side of the query engine — file scans feed the iterator
tree, and the assembly operator's *input* (the set of root OIDs) often
comes from a heap-file or index scan.

A heap file owns a chain of pages allocated in extents and supports
append, fetch-by-RID, update, delete, and full scans.  Records are raw
byte strings; schemas live above this layer.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import BadSlotError, PageFullError, StorageError
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.oid import Rid

#: Pages claimed from the disk each time a heap file grows.
DEFAULT_EXTENT_PAGES = 8


class HeapFile:
    """An unordered file of variable-length records.

    Pages are acquired from the shared disk in contiguous extents but a
    heap file's pages need not be globally contiguous — extents from
    different files interleave on disk, just as in a real system.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        buffer: Optional[BufferManager] = None,
        extent_pages: int = DEFAULT_EXTENT_PAGES,
        name: str = "heap",
    ) -> None:
        if extent_pages <= 0:
            raise StorageError("extent_pages must be positive")
        self._disk = disk
        self.buffer = buffer if buffer is not None else BufferManager(disk)
        self._extent_pages = extent_pages
        self.name = name
        self._pages: List[int] = []
        self._record_count = 0

    # -- growth ------------------------------------------------------------

    def _grow(self) -> None:
        extent = self._disk.allocate(self._extent_pages)
        self._pages.extend(range(extent.start, extent.end))

    @property
    def page_ids(self) -> Tuple[int, ...]:
        """All pages of the file, in file order."""
        return tuple(self._pages)

    def __len__(self) -> int:
        return self._record_count

    # -- modification -------------------------------------------------------

    def append(self, record: bytes) -> Rid:
        """Add a record at the end of the file; return its RID."""
        if not record:
            raise StorageError("cannot append an empty record")
        if not self._pages:
            self._grow()
        last = self._pages[-1]
        page = self.buffer.fix(last)
        try:
            slot = page.insert(record)
            self.buffer.unfix(last, dirty=True)
        except PageFullError:
            self.buffer.unfix(last)
            self._grow()
            new_last = self._pages[-1]
            with self.buffer.fixed(new_last, dirty=True) as fresh:
                slot = fresh.insert(record)
            last = new_last
        self._record_count += 1
        return Rid(last, slot)

    def fetch(self, rid: Rid) -> bytes:
        """Read the record stored at ``rid``."""
        if rid.page_id not in self._page_set():
            raise BadSlotError(f"{rid} is not in heap file {self.name!r}")
        with self.buffer.fixed(rid.page_id) as page:
            return page.read(rid.slot)

    def update(self, rid: Rid, record: bytes) -> None:
        """Overwrite the record at ``rid`` (same length only)."""
        if rid.page_id not in self._page_set():
            raise BadSlotError(f"{rid} is not in heap file {self.name!r}")
        with self.buffer.fixed(rid.page_id, dirty=True) as page:
            page.update(rid.slot, record)

    def delete(self, rid: Rid) -> None:
        """Tombstone the record at ``rid``."""
        if rid.page_id not in self._page_set():
            raise BadSlotError(f"{rid} is not in heap file {self.name!r}")
        with self.buffer.fixed(rid.page_id, dirty=True) as page:
            page.delete(rid.slot)
        self._record_count -= 1

    def _page_set(self) -> set:
        return set(self._pages)

    # -- scanning -------------------------------------------------------------

    def scan(self) -> Iterator[Tuple[Rid, bytes]]:
        """Yield ``(rid, record)`` for every live record in file order."""
        for page_id in self._pages:
            with self.buffer.fixed(page_id) as page:
                contents = list(page.records())
            for slot, record in contents:
                yield Rid(page_id, slot), record

    def flush(self) -> None:
        """Write all dirty buffered pages of this file back to disk."""
        self.buffer.flush_all()

    def __repr__(self) -> str:
        return (
            f"HeapFile(name={self.name!r}, pages={len(self._pages)}, "
            f"records={self._record_count})"
        )
