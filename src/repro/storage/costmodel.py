"""A fuller disk service-time model (robustness extension).

The paper measures pure seek distance and cites Scranton et al.'s "The
Access Time Myth" [23] — the observation that for short seeks the
*constant* parts of an access (head settling, rotational latency,
transfer) dominate the distance-proportional part.  That raises a fair
question about every figure: do the paper's conclusions survive a
service-time model in which seeks are only one component?

:class:`CostModel` prices one read as::

    settle + seek_per_page * distance      (0 when distance == 0)
    + rotational_latency                   (average half rotation)
    + transfer                             (one page)

:class:`CostedDisk` is a :class:`SimulatedDisk` that additionally
accumulates service time under a cost model; the A-9 ablation re-ranks
the schedulers by service time and checks the orderings hold (while
honestly reporting how much the *ratios* shrink).

Default constants approximate a late-1980s disk (the paper's era):
~30 ms full-stroke seek over ~1000 cylinders, 3600 rpm (8.3 ms average
rotational latency), ~1 ms settle, ~0.3 ms to transfer 1 KB.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DiskError
from repro.storage.disk import SimulatedDisk


@dataclass(frozen=True)
class CostModel:
    """Per-read service-time pricing, in milliseconds."""

    seek_per_page: float = 0.03
    settle: float = 1.0
    rotational_latency: float = 8.3
    transfer: float = 0.3

    def __post_init__(self) -> None:
        for name in ("seek_per_page", "settle", "rotational_latency", "transfer"):
            if getattr(self, name) < 0:
                raise DiskError(f"{name} must be non-negative")
        # Memo of (distance, n_pages) -> milliseconds.  The model is
        # frozen, distances repeat heavily under sweep scheduling, and
        # the cache is not a dataclass field, so equality/hash/asdict
        # semantics are unchanged.  object.__setattr__ sidesteps the
        # frozen-instance guard.
        object.__setattr__(self, "_run_cache", {})

    def service_time(self, distance: int) -> float:
        """Milliseconds to serve one read that moved ``distance`` pages."""
        return self.run_service_time(distance, 1)

    def run_service_time(self, distance: int, n_pages: int) -> float:
        """Milliseconds for one contiguous run: one positioning, one
        rotational wait, then ``n_pages`` sequential page transfers.

        This is what makes run batching pay under the full model — the
        constant positioning costs are amortized over the run, not just
        the seek distance.
        """
        key = (distance, n_pages)
        try:
            return self._run_cache[key]
        except KeyError:
            pass
        positioning = 0.0
        if distance > 0:
            positioning = self.settle + self.seek_per_page * distance
        cost = positioning + self.rotational_latency + self.transfer * n_pages
        self._run_cache[key] = cost
        return cost


#: A pricing where only distance matters — reproduces the paper's metric.
SEEK_ONLY = CostModel(
    seek_per_page=1.0, settle=0.0, rotational_latency=0.0, transfer=0.0
)


class CostedDisk(SimulatedDisk):
    """A simulated disk that also accumulates service time."""

    def __init__(self, cost_model: CostModel = CostModel(), **kwargs) -> None:
        super().__init__(**kwargs)
        self.cost_model = cost_model
        #: accumulated read service time, in milliseconds.
        self.service_time_total = 0.0

    def read(self, page_id: int):
        page = super().read(page_id)
        distance = self.stats.read_seeks[-1]
        self.service_time_total += self.cost_model.service_time(distance)
        return page

    def read_run(self, start: int, n_pages: int):
        pages = super().read_run(start, n_pages)
        distance = self.stats.read_seeks[-1]
        self.service_time_total += self.cost_model.run_service_time(
            distance, n_pages
        )
        return pages

    @property
    def avg_service_time_per_read(self) -> float:
        """Mean milliseconds per read (0.0 before any read)."""
        if self.stats.reads == 0:
            return 0.0
        return self.service_time_total / self.stats.reads

    def reset_stats(self, head_to_zero: bool = True) -> None:
        """Also zeroes the service-time accumulator."""
        super().reset_stats(head_to_zero=head_to_zero)
        self.service_time_total = 0.0
