"""Slotted 1 KB pages.

The paper's experiments use pages "of size 1K bytes" holding nine
96-byte objects each.  A :class:`Page` is a classic slotted page:

* an 8-byte header — page id (4), slot count (2), free-space offset (2),
* record bytes growing upward from the header,
* a slot directory (4 bytes per slot: offset, length) growing downward
  from the page end.

Stored objects carry a 10-byte OID prefix (see
:mod:`repro.storage.store`), so one object costs 10 + 96 = 106 payload
bytes plus a 4-byte slot: nine objects fit in a 1 KB page and a tenth
does not — exactly the paper's packing.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from repro.errors import BadSlotError, PageError, PageFullError

#: Page size in bytes (paper: 1 KB pages).
PAGE_SIZE = 1024
#: Bytes of page header: page_id (uint32), slot_count (uint16), free_offset (uint16).
PAGE_HEADER_SIZE = 8
#: Bytes per slot-directory entry: offset (uint16), length (uint16).
SLOT_SIZE = 4

_HEADER = struct.Struct(">IHH")
_SLOT = struct.Struct(">HH")


class Page:
    """A fixed-size slotted page of records.

    Records are addressed by slot number.  Deleting a record leaves a
    tombstone slot (length 0); slot numbers of live records never
    change, so RIDs stay valid.
    """

    def __init__(self, page_id: int, data: Optional[bytes] = None) -> None:
        if data is None:
            self._buf = bytearray(PAGE_SIZE)
            self.page_id = page_id
            self._slot_count = 0
            self._free_offset = PAGE_HEADER_SIZE
            self._write_header()
        else:
            if len(data) != PAGE_SIZE:
                raise PageError(
                    f"page image must be {PAGE_SIZE} bytes, got {len(data)}"
                )
            self._buf = bytearray(data)
            stored_id, self._slot_count, self._free_offset = (
                _HEADER.unpack_from(self._buf)
            )
            self.page_id = stored_id
            if page_id != stored_id:
                raise PageError(
                    f"page image says id {stored_id}, expected {page_id}"
                )

    # -- header helpers ----------------------------------------------------

    def _write_header(self) -> None:
        _HEADER.pack_into(
            self._buf, 0, self.page_id, self._slot_count, self._free_offset
        )

    def _slot_pos(self, slot: int) -> int:
        return PAGE_SIZE - (slot + 1) * SLOT_SIZE

    def _read_slot(self, slot: int) -> Tuple[int, int]:
        if not 0 <= slot < self._slot_count:
            raise BadSlotError(
                f"slot {slot} out of range on page {self.page_id}"
            )
        return _SLOT.unpack_from(self._buf, PAGE_SIZE - (slot + 1) * SLOT_SIZE)

    def _write_slot(self, slot: int, offset: int, length: int) -> None:
        _SLOT.pack_into(
            self._buf, PAGE_SIZE - (slot + 1) * SLOT_SIZE, offset, length
        )

    # -- public interface ---------------------------------------------------

    @property
    def slot_count(self) -> int:
        """Number of slots, including tombstones."""
        return self._slot_count

    @property
    def free_space(self) -> int:
        """Bytes available for one more record (including its slot entry)."""
        used_by_slots = self._slot_count * SLOT_SIZE
        return PAGE_SIZE - used_by_slots - self._free_offset

    def fits(self, length: int) -> bool:
        """Would a record of ``length`` bytes fit (with a new slot entry)?"""
        return length + SLOT_SIZE <= self.free_space

    def insert(self, record: bytes) -> int:
        """Append a record; return its slot number.

        Raises :class:`PageFullError` when the record does not fit.
        """
        if not record:
            raise PageError("cannot insert an empty record")
        length = len(record)
        if length + SLOT_SIZE > self.free_space:
            raise PageFullError(
                f"page {self.page_id}: {length} bytes do not fit "
                f"({self.free_space} free)"
            )
        offset = self._free_offset
        self._buf[offset : offset + length] = record
        slot = self._slot_count
        self._slot_count += 1
        self._write_slot(slot, offset, length)
        self._free_offset = offset + length
        self._write_header()
        return slot

    def read(self, slot: int) -> bytes:
        """Return the record stored in ``slot``.

        Raises :class:`BadSlotError` for out-of-range or deleted slots.
        """
        offset, length = self._read_slot(slot)
        if length == 0:
            raise BadSlotError(
                f"slot {slot} on page {self.page_id} is deleted"
            )
        return bytes(self._buf[offset : offset + length])

    def delete(self, slot: int) -> None:
        """Tombstone ``slot``.  The space is not compacted."""
        offset, length = self._read_slot(slot)
        if length == 0:
            raise BadSlotError(
                f"slot {slot} on page {self.page_id} is already deleted"
            )
        self._write_slot(slot, offset, 0)

    def update(self, slot: int, record: bytes) -> None:
        """Overwrite ``slot`` in place.

        Only same-length updates are supported; the experiments never
        grow records, and fixed-size updates keep RIDs stable.
        """
        offset, length = self._read_slot(slot)
        if length == 0:
            raise BadSlotError(
                f"slot {slot} on page {self.page_id} is deleted"
            )
        if len(record) != length:
            raise PageError(
                f"update must keep length {length}, got {len(record)}"
            )
        self._buf[offset : offset + length] = record

    def records(self) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(slot, record)`` for every live record in slot order."""
        for slot in range(self._slot_count):
            offset, length = self._read_slot(slot)
            if length:
                yield slot, bytes(self._buf[offset : offset + length])

    def live_count(self) -> int:
        """Number of non-deleted records."""
        return sum(1 for _ in self.records())

    def to_bytes(self) -> bytes:
        """Serialize the full page image."""
        return bytes(self._buf)

    @classmethod
    def from_bytes(cls, page_id: int, data: bytes) -> "Page":
        """Deserialize a page image produced by :meth:`to_bytes`."""
        return cls(page_id, data)

    def __repr__(self) -> str:
        return (
            f"Page(id={self.page_id}, slots={self._slot_count}, "
            f"free={self.free_space})"
        )


def records_per_page(record_size: int) -> int:
    """How many fixed-size records fit in one page.

    With the paper's 96-byte objects plus the 10-byte stored-OID prefix
    this returns 9, matching Section 6.
    """
    usable = PAGE_SIZE - PAGE_HEADER_SIZE
    return usable // (record_size + SLOT_SIZE)
