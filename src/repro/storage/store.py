"""OID-addressed object storage with explicit physical placement.

The clustering layouts of Figures 8–10 need to decide *which page* each
storage-layer object lands on; the assembly operator then fetches
objects by OID through the buffer manager.  :class:`ObjectStore` is the
meeting point: a layout writes objects to chosen pages, the store
registers OID → RID in the :class:`~repro.storage.oid.OidDirectory`,
and fetches go page-at-a-time through the buffer so every access is
charged a seek by the simulated disk.

Stored form of an object: 10-byte OID prefix + fixed-size payload.
With the paper's 96-byte payload this packs nine objects per 1 KB page.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import (
    DuplicateOidError,
    PageFullError,
    RecordError,
    StorageError,
)
from repro.storage.buffer import BufferManager
from repro.storage.disk import Extent, SimulatedDisk
from repro.storage.oid import OID_SIZE, Oid, OidDirectory, Rid
from repro.storage.page import Page
from repro.storage.record import PAPER_FORMAT, ObjectRecord, RecordFormat


class ObjectStore:
    """Objects addressable by OID, placed on explicit pages.

    The store does not own an extent: layouts allocate extents from the
    disk and then direct each object to a page.  ``bulk`` loading goes
    straight to the disk (it is the load phase, outside measurement);
    fetches go through the buffer manager so the measured phase sees
    buffer hits, faults, and seeks.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        buffer: Optional[BufferManager] = None,
        fmt: RecordFormat = PAPER_FORMAT,
    ) -> None:
        self._disk = disk
        self.buffer = buffer if buffer is not None else BufferManager(disk)
        self.fmt = fmt
        self.directory = OidDirectory()
        self._stored_size = OID_SIZE + fmt.payload_size
        self._write_hooks: List[Callable[[Oid], None]] = []
        # Write-through cache of decoded field values, keyed by RID:
        # rid -> (stored bytes, owner OID, int values, reference OIDs).
        # A fetch only uses an entry when the page still holds exactly
        # the remembered bytes, so out-of-band page mutation (fault
        # injection, corruption tests) safely falls back to the codec,
        # and the owner OID keeps the directory cross-check intact.
        # Values are immutable tuples — fetches hand out fresh lists.
        self._decoded: Dict[
            Rid, Tuple[bytes, Oid, Tuple[int, ...], Tuple[Oid, ...]]
        ] = {}

    # -- write hooks ------------------------------------------------------------

    def add_write_hook(self, hook: Callable[[Oid], None]) -> None:
        """Register a callback invoked with every written OID.

        The assembly service's result cache subscribes here so any
        store write — bulk load or in-place update — invalidates cached
        complex objects containing the written object.
        """
        self._write_hooks.append(hook)

    def remove_write_hook(self, hook: Callable[[Oid], None]) -> None:
        """Unregister a previously added write hook (no-op if absent)."""
        try:
            self._write_hooks.remove(hook)
        except ValueError:
            pass

    def _notify_write(self, oid: Oid) -> None:
        for hook in self._write_hooks:
            hook(oid)

    # -- geometry ---------------------------------------------------------------

    @property
    def disk(self) -> SimulatedDisk:
        """The underlying simulated disk."""
        return self._disk

    @property
    def stored_record_size(self) -> int:
        """Bytes one object occupies in a page (OID prefix + payload)."""
        return self._stored_size

    def objects_per_page(self) -> int:
        """How many objects fit on one page (9 for the paper geometry)."""
        probe = Page(0)
        count = 0
        while probe.fits(self._stored_size):
            probe.insert(b"\x00" * self._stored_size)
            count += 1
        return count

    # -- loading (unmeasured phase) ------------------------------------------------

    def store_at(self, oid: Oid, record: ObjectRecord, page_id: int) -> Rid:
        """Place ``record`` under ``oid`` on page ``page_id``.

        Used by clustering layouts during the load phase: the write
        goes directly to disk, bypassing the buffer, and the OID
        directory learns the physical address.  Raises
        :class:`PageFullError` when the page already holds a full
        complement of objects.
        """
        if oid in self.directory:
            raise DuplicateOidError(f"{oid} already stored")
        if record.fmt is not self.fmt and record.fmt != self.fmt:
            raise RecordError("record format does not match store format")
        page = self._disk.read(page_id)
        stored = oid.encode() + record.encode()
        try:
            slot = page.insert(stored)
        except PageFullError:
            raise PageFullError(
                f"page {page_id} cannot hold another object"
            ) from None
        self._disk.write(page)
        rid = Rid(page_id, slot)
        self.directory.register(oid, rid)
        self._decoded[rid] = (
            stored, oid, tuple(record.ints), tuple(record.refs)
        )
        self._notify_write(oid)
        return rid

    def store_page(
        self, page_id: int, items: "List[Tuple[Oid, ObjectRecord]]"
    ) -> List[Rid]:
        """Place a whole page's objects in one write (bulk load path).

        Behaves like repeated :meth:`store_at` for a page that is still
        empty; the page is built in memory and written once, which is
        what makes laying out multi-thousand-object databases cheap.
        """
        page = self._disk.read(page_id)
        rids: List[Rid] = []
        entries: List[
            Tuple[bytes, Oid, Tuple[int, ...], Tuple[Oid, ...]]
        ] = []
        for oid, record in items:
            if oid in self.directory:
                raise DuplicateOidError(f"{oid} already stored")
            if record.fmt is not self.fmt and record.fmt != self.fmt:
                raise RecordError("record format does not match store format")
            stored = oid.encode() + record.encode()
            slot = page.insert(stored)
            rids.append(Rid(page_id, slot))
            entries.append(
                (stored, oid, tuple(record.ints), tuple(record.refs))
            )
        self._disk.write(page)
        for (oid, _record), rid, entry in zip(items, rids, entries):
            self.directory.register(oid, rid)
            self._decoded[rid] = entry
            self._notify_write(oid)
        return rids

    # -- snapshot / restore ----------------------------------------------------

    def dump_decoded(
        self,
    ) -> "Dict[Rid, Tuple[bytes, Oid, Tuple[int, ...], Tuple[Oid, ...]]]":
        """A copy of the decoded-record cache (snapshot support).

        Entries are immutable tuples, so the copy is shallow and safe
        to share across store instances.
        """
        return dict(self._decoded)

    def load_decoded(
        self,
        entries: "Dict[Rid, Tuple[bytes, Oid, Tuple[int, ...], Tuple[Oid, ...]]]",
    ) -> None:
        """Install decoded-cache entries captured by :meth:`dump_decoded`."""
        self._decoded = dict(entries)

    # -- fetching (measured phase) ----------------------------------------------------

    def page_of(self, oid: Oid) -> int:
        """Physical page of ``oid`` — the elevator scheduler's sort key."""
        return self.directory.page_of(oid)

    def _decode_stored(self, stored: bytes) -> Tuple[Oid, ObjectRecord]:
        oid = Oid.decode(stored[:OID_SIZE])
        record = ObjectRecord.decode(stored[OID_SIZE:], self.fmt)
        return oid, record

    def _record_from_cache(
        self, cached: Tuple[bytes, Oid, Tuple[int, ...], Tuple[Oid, ...]]
    ) -> ObjectRecord:
        """An :class:`ObjectRecord` built from a decoded-cache entry.

        Fresh lists every time: callers may mutate the record without
        touching the cache.
        """
        record = ObjectRecord.__new__(ObjectRecord)
        record.ints = list(cached[2])
        record.refs = list(cached[3])
        record.fmt = self.fmt
        return record

    def fetch(self, oid: Oid) -> ObjectRecord:
        """Read one object through the buffer (fix, copy, unfix)."""
        rid = self.directory.lookup(oid)
        with self.buffer.fixed(rid.page_id) as page:
            stored = page.read(rid.slot)
        cached = self._decoded.get(rid)
        if cached is not None and cached[0] == stored:
            if cached[1] != oid:
                raise StorageError(
                    f"directory said {oid} at {rid}, page holds {cached[1]}"
                )
            return self._record_from_cache(cached)
        stored_oid, record = self._decode_stored(stored)
        if stored_oid != oid:
            raise StorageError(
                f"directory said {oid} at {rid}, page holds {stored_oid}"
            )
        return record

    def fetch_pinned(self, oid: Oid) -> ObjectRecord:
        """Read one object and leave its page pinned.

        The assembly operator uses this form: the page stays fixed
        until the owning complex object is emitted (or aborted), which
        is how partially assembled objects are guaranteed resident.
        Callers must balance with :meth:`unpin`.
        """
        rid = self.directory.lookup(oid)
        page = self.buffer.fix(rid.page_id)
        stored = page.read(rid.slot)
        cached = self._decoded.get(rid)
        if cached is not None and cached[0] == stored:
            if cached[1] != oid:
                self.buffer.unfix(rid.page_id)
                raise StorageError(
                    f"directory said {oid} at {rid}, page holds {cached[1]}"
                )
            return self._record_from_cache(cached)
        stored_oid, record = self._decode_stored(stored)
        if stored_oid != oid:
            self.buffer.unfix(rid.page_id)
            raise StorageError(
                f"directory said {oid} at {rid}, page holds {stored_oid}"
            )
        return record

    def unpin(self, oid: Oid) -> None:
        """Release the pin taken by :meth:`fetch_pinned`."""
        rid = self.directory.lookup(oid)
        self.buffer.unfix(rid.page_id)

    # -- updating (measured phase) -----------------------------------------------

    def overwrite(self, oid: Oid, record: ObjectRecord) -> None:
        """Replace the stored record of an existing object in place.

        Goes through the buffer (the frame is marked dirty), keeps the
        object's physical address, and fires the write hooks — the
        update path that forces the assembly service's result cache to
        drop complex objects containing ``oid``.
        """
        if record.fmt is not self.fmt and record.fmt != self.fmt:
            raise RecordError("record format does not match store format")
        rid = self.directory.lookup(oid)
        stored = oid.encode() + record.encode()
        with self.buffer.fixed(rid.page_id, dirty=True) as page:
            page.update(rid.slot, stored)
        self._decoded[rid] = (
            stored, oid, tuple(record.ints), tuple(record.refs)
        )
        self._notify_write(oid)

    # -- reorganization (measured phase) -----------------------------------------

    def migrate(self, oid: Oid, target_page_id: int) -> Rid:
        """Move one object onto ``target_page_id``; returns the new RID.

        The online-reorganization primitive: the stored bytes are read
        from the source slot, inserted on the target page, the source
        slot is tombstoned, and the directory relocates the OID — all
        through the buffer, so concurrent readers never see a stale
        copy.  Ordering is the transactional part: the target insert
        happens *before* the source delete, so a full target page
        (:class:`PageFullError`) aborts the move with the object still
        intact at its old address.

        The decoded-record cache entry travels to the new RID (the
        bytes are unchanged), and the write hooks fire once — which is
        what evicts every cached assembled object containing ``oid``
        from the service's result cache.
        """
        source = self.directory.lookup(oid)
        if source.page_id == target_page_id:
            return source
        with self.buffer.fixed(source.page_id) as page:
            stored = page.read(source.slot)
        with self.buffer.fixed(target_page_id, dirty=True) as page:
            slot = page.insert(stored)
        with self.buffer.fixed(source.page_id, dirty=True) as page:
            page.delete(source.slot)
        target = Rid(target_page_id, slot)
        self.directory.relocate(oid, target)
        entry = self._decoded.pop(source, None)
        if entry is not None:
            self._decoded[target] = entry
        self._notify_write(oid)
        return target

    # -- scanning -------------------------------------------------------------------------

    def scan_extent(self, extent: Extent) -> Iterator[Tuple[Oid, ObjectRecord]]:
        """Yield every object in an extent in physical order (via buffer)."""
        for page_id in range(extent.start, extent.end):
            with self.buffer.fixed(page_id) as page:
                stored_records = [rec for _slot, rec in page.records()]
            for stored in stored_records:
                yield self._decode_stored(stored)

    def __len__(self) -> int:
        return len(self.directory)


class PagePlanner:
    """Sequential page-filling helper for layouts.

    Tracks how many objects each page already holds so layouts can pack
    ``objects_per_page`` objects per page without reading pages back.
    """

    def __init__(self, store: ObjectStore, extent: Extent) -> None:
        self._extent = extent
        self._per_page = store.objects_per_page()
        self._fill: Dict[int, int] = {}
        self._cursor = 0  # first extent index that may have room

    @property
    def extent(self) -> Extent:
        """The extent this planner fills."""
        return self._extent

    @property
    def objects_per_page(self) -> int:
        """Packing factor used by the planner."""
        return self._per_page

    def capacity(self) -> int:
        """Total objects the extent can hold."""
        return self._extent.length * self._per_page

    def slots_in_order(self) -> List[int]:
        """Page ids repeated once per free object slot, physical order."""
        pages: List[int] = []
        for index in range(self._extent.length):
            page_id = self._extent.page_at(index)
            free = self._per_page - self._fill.get(page_id, 0)
            pages.extend([page_id] * free)
        return pages

    def claim(self, page_id: int) -> int:
        """Reserve one object slot on ``page_id``; returns slots used so far."""
        if page_id not in self._extent:
            raise StorageError(
                f"page {page_id} outside extent {self._extent}"
            )
        used = self._fill.get(page_id, 0)
        if used >= self._per_page:
            raise PageFullError(f"page {page_id} already fully planned")
        self._fill[page_id] = used + 1
        return used + 1

    def next_sequential(self) -> int:
        """Page id of the next free slot in physical order.

        Amortized O(1): the cursor never moves backwards, and pages
        claimed out of order (via :meth:`claim` on arbitrary pages) are
        simply skipped when the cursor reaches them.
        """
        while self._cursor < self._extent.length:
            page_id = self._extent.page_at(self._cursor)
            if self._fill.get(page_id, 0) < self._per_page:
                return page_id
            self._cursor += 1
        raise PageFullError(f"extent {self._extent} is fully planned")
