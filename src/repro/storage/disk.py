"""The simulated disk: the paper's performance model.

Section 6 of the paper measures "average seek distance, in pages of
size 1K bytes … total seek distance divided by the total number of
reads", assuming "entire control over the queue of requests for the
disk".  :class:`SimulatedDisk` is exactly that model: a linear array of
pages with a head position; every read or write moves the head by
``|target − position|`` pages and that distance is accounted.

The disk also provides contiguous **extent** allocation, which the
clustering layouts (Figures 8–10, 12) use to place clusters at chosen
physical locations, including the sparse, shuffled cluster extents that
make breadth-first scheduling pathological in Figure 11A.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import DiskError, ExtentError
from repro.storage.page import PAGE_SIZE, Page


@dataclass
class DiskStats:
    """Head-movement accounting, the paper's metric.

    ``avg_seek_per_read`` is the figure plotted throughout Section 6.
    Writes are tracked separately so database loading never pollutes
    the read statistics (and callers reset stats after loading anyway).
    """

    reads: int = 0
    writes: int = 0
    read_seek_total: int = 0
    write_seek_total: int = 0
    #: Per-read seek distances, kept for distribution-level assertions.
    read_seeks: List[int] = field(default_factory=list, repr=False)

    @property
    def avg_seek_per_read(self) -> float:
        """Average pages moved per read — the paper's y-axis."""
        if self.reads == 0:
            return 0.0
        return self.read_seek_total / self.reads

    def snapshot(self) -> "DiskStats":
        """An independent copy (histories included)."""
        return DiskStats(
            reads=self.reads,
            writes=self.writes,
            read_seek_total=self.read_seek_total,
            write_seek_total=self.write_seek_total,
            read_seeks=list(self.read_seeks),
        )


@dataclass(frozen=True)
class Extent:
    """A contiguous run of pages: ``[start, start + length)``."""

    start: int
    length: int

    @property
    def end(self) -> int:
        """One past the last page id of the extent."""
        return self.start + self.length

    def __contains__(self, page_id: int) -> bool:
        return self.start <= page_id < self.end

    def page_at(self, index: int) -> int:
        """Absolute page id of the ``index``-th page of the extent."""
        if not 0 <= index < self.length:
            raise ExtentError(
                f"index {index} outside extent of {self.length} pages"
            )
        return self.start + index


class SimulatedDisk:
    """A dedicated single-head disk with per-access seek accounting.

    Pages materialize lazily: reading a never-written page returns a
    fresh empty page.  The head starts at page 0.  The experiments own
    the device exclusively, as the paper assumes, so there is no
    request interleaving to model — the *caller* (the assembly
    operator's scheduler) decides the access order, and the disk simply
    charges the distance.
    """

    def __init__(self, n_pages: Optional[int] = None) -> None:
        """``n_pages`` bounds the address space; ``None`` means unbounded."""
        if n_pages is not None and n_pages <= 0:
            raise DiskError("disk must have at least one page")
        self._limit = n_pages
        self._pages: Dict[int, bytes] = {}
        self._next_free = 0
        self._head = 0
        self.stats = DiskStats()

    # -- geometry -----------------------------------------------------------

    @property
    def page_size(self) -> int:
        """Bytes per page (always :data:`PAGE_SIZE`)."""
        return PAGE_SIZE

    @property
    def head_position(self) -> int:
        """Current head position in pages — elevator scheduling input."""
        return self._head

    @property
    def allocated_pages(self) -> int:
        """Pages handed out through :meth:`allocate` so far."""
        return self._next_free

    def _check(self, page_id: int) -> None:
        if page_id < 0:
            raise DiskError(f"negative page id {page_id}")
        if self._limit is not None and page_id >= self._limit:
            raise DiskError(
                f"page {page_id} beyond disk of {self._limit} pages"
            )

    # -- allocation -----------------------------------------------------------

    def allocate(self, n_pages: int) -> Extent:
        """Reserve the next ``n_pages`` contiguous pages."""
        if n_pages <= 0:
            raise ExtentError("extent must contain at least one page")
        start = self._next_free
        end = start + n_pages
        if self._limit is not None and end > self._limit:
            raise ExtentError(
                f"extent of {n_pages} pages exceeds disk of "
                f"{self._limit} pages"
            )
        self._next_free = end
        return Extent(start=start, length=n_pages)

    # -- I/O ------------------------------------------------------------------

    def _seek_to(self, page_id: int) -> int:
        distance = abs(page_id - self._head)
        self._head = page_id
        return distance

    def read(self, page_id: int) -> Page:
        """Read a page, moving the head and charging the seek."""
        self._check(page_id)
        distance = self._seek_to(page_id)
        self.stats.reads += 1
        self.stats.read_seek_total += distance
        self.stats.read_seeks.append(distance)
        image = self._pages.get(page_id)
        if image is None:
            return Page(page_id)
        return Page.from_bytes(page_id, image)

    def write(self, page: Page) -> None:
        """Write a page image back, moving the head."""
        self._check(page.page_id)
        distance = self._seek_to(page.page_id)
        self.stats.writes += 1
        self.stats.write_seek_total += distance
        self._pages[page.page_id] = page.to_bytes()

    # -- statistics -------------------------------------------------------------

    def reset_stats(self, head_to_zero: bool = True) -> None:
        """Forget all accounting; optionally park the head at page 0.

        Benchmarks call this between database loading and measurement,
        mirroring the paper's separation of load and query phases.
        """
        self.stats = DiskStats()
        if head_to_zero:
            self._head = 0

    def __repr__(self) -> str:
        limit = "unbounded" if self._limit is None else str(self._limit)
        return (
            f"SimulatedDisk(pages={limit}, allocated={self._next_free}, "
            f"head={self._head})"
        )
