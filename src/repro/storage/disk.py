"""The simulated disk: the paper's performance model.

Section 6 of the paper measures "average seek distance, in pages of
size 1K bytes … total seek distance divided by the total number of
reads", assuming "entire control over the queue of requests for the
disk".  :class:`SimulatedDisk` is exactly that model: a linear array of
pages with a head position; every read or write moves the head by
``|target − position|`` pages and that distance is accounted.

The disk also provides contiguous **extent** allocation, which the
clustering layouts (Figures 8–10, 12) use to place clusters at chosen
physical locations, including the sparse, shuffled cluster extents that
make breadth-first scheduling pathological in Figure 11A.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import DiskError, ExtentError
from repro.storage.page import PAGE_SIZE, Page

#: Observer of physical reads: called with ``(seek_distance, n_pages)``
#: once per physical read operation (a multi-page run is one call).
IoListener = Callable[[int, int], None]

#: Additive observer of physical reads: called with ``(start_page,
#: seek_distance, n_pages)`` once per physical read operation.  Unlike
#: the exclusive :data:`IoListener` slot, any number can be attached.
IoObserver = Callable[[int, int, int], None]


@dataclass
class DiskStats:
    """Head-movement accounting, the paper's metric.

    ``avg_seek_per_read`` is the figure plotted throughout Section 6.
    Writes are tracked separately so database loading never pollutes
    the read statistics (and callers reset stats after loading anyway).

    ``reads`` counts *physical* read operations: a multi-page
    :meth:`SimulatedDisk.read_run` is one seek and one read, however
    many pages it transfers.  ``pages_read`` counts the transferred
    pages, so it equals ``reads`` exactly until runs are batched.
    """

    reads: int = 0
    writes: int = 0
    read_seek_total: int = 0
    write_seek_total: int = 0
    #: Pages transferred by reads (== reads unless runs are batched).
    pages_read: int = 0
    #: Multi-page contiguous runs among ``reads``.
    run_reads: int = 0
    #: Milliseconds this device spent serving reads under an
    #: event-driven engine (:mod:`repro.storage.events`); stays 0.0 on
    #: the synchronous path, where time is not modelled per device.
    busy_ms: float = 0.0
    #: Per-read seek distances, kept for distribution-level assertions.
    read_seeks: List[int] = field(default_factory=list, repr=False)

    @property
    def avg_seek_per_read(self) -> float:
        """Average pages moved per page read — the paper's y-axis.

        The paper computes "total seek distance divided by the total
        number of reads" with every read transferring one page, so the
        denominator here is ``pages_read``: identical to the paper's
        definition for unbatched runs (``pages_read == reads``), and the
        fair per-page amortization once multi-page runs make a single
        physical read transfer several pages.  Dividing by physical
        ``reads`` instead would *rise* under batching even as total seek
        falls, because coalescing removes cheap adjacent seeks from the
        numerator and denominator alike.
        """
        if self.pages_read == 0:
            return 0.0
        return self.read_seek_total / self.pages_read

    def snapshot(self) -> "DiskStats":
        """An independent copy (histories included)."""
        return DiskStats(
            reads=self.reads,
            writes=self.writes,
            read_seek_total=self.read_seek_total,
            write_seek_total=self.write_seek_total,
            pages_read=self.pages_read,
            run_reads=self.run_reads,
            busy_ms=self.busy_ms,
            read_seeks=list(self.read_seeks),
        )


def coalesce_runs(page_ids: Sequence[int]) -> List[Tuple[int, int]]:
    """Group page ids into ``(start, length)`` physical runs.

    Ids are taken in the given order (a scheduler's sweep order);
    neighbours that step by +1 or −1 join one run, and a descending
    run is reported from its lowest page so it can be transferred
    ascending in one pass.  Repeated neighbours collapse; any other
    discontinuity starts a new run.
    """
    runs: List[Tuple[int, int]] = []
    run_start: Optional[int] = None
    run_end = 0  # one past the highest page of the current run
    direction = 0  # 0 until the run's second page fixes it
    previous: Optional[int] = None
    for page_id in page_ids:
        if previous is not None and page_id == previous:
            continue
        if run_start is None:
            run_start, run_end, direction = page_id, page_id + 1, 0
        else:
            step = page_id - previous
            if step in (1, -1) and direction in (0, step):
                direction = step
                run_start = min(run_start, page_id)
                run_end = max(run_end, page_id + 1)
            else:
                runs.append((run_start, run_end - run_start))
                run_start, run_end, direction = page_id, page_id + 1, 0
        previous = page_id
    if run_start is not None:
        runs.append((run_start, run_end - run_start))
    return runs


@dataclass(frozen=True)
class Extent:
    """A contiguous run of pages: ``[start, start + length)``."""

    start: int
    length: int

    @property
    def end(self) -> int:
        """One past the last page id of the extent."""
        return self.start + self.length

    def __contains__(self, page_id: int) -> bool:
        return self.start <= page_id < self.end

    def page_at(self, index: int) -> int:
        """Absolute page id of the ``index``-th page of the extent."""
        if not 0 <= index < self.length:
            raise ExtentError(
                f"index {index} outside extent of {self.length} pages"
            )
        return self.start + index


class SimulatedDisk:
    """A dedicated single-head disk with per-access seek accounting.

    Pages materialize lazily: reading a never-written page returns a
    fresh empty page.  The head starts at page 0.  The experiments own
    the device exclusively, as the paper assumes, so there is no
    request interleaving to model — the *caller* (the assembly
    operator's scheduler) decides the access order, and the disk simply
    charges the distance.
    """

    def __init__(self, n_pages: Optional[int] = None) -> None:
        """``n_pages`` bounds the address space; ``None`` means unbounded."""
        if n_pages is not None and n_pages <= 0:
            raise DiskError("disk must have at least one page")
        self._limit = n_pages
        self._pages: Dict[int, bytes] = {}
        self._next_free = 0
        self._head = 0
        self.stats = DiskStats()
        self._io_listener: Optional[IoListener] = None
        self._io_observers: List[IoObserver] = []
        #: optional :class:`repro.storage.faults.FaultInjector`; its
        #: ``before_read`` gate runs ahead of any head movement or
        #: accounting, so a failed attempt leaves the disk untouched.
        self.fault_injector = None

    # -- geometry -----------------------------------------------------------

    @property
    def page_size(self) -> int:
        """Bytes per page (always :data:`PAGE_SIZE`)."""
        return PAGE_SIZE

    @property
    def head_position(self) -> int:
        """Current head position in pages — elevator scheduling input."""
        return self._head

    @property
    def allocated_pages(self) -> int:
        """Pages handed out through :meth:`allocate` so far."""
        return self._next_free

    def _check(self, page_id: int) -> None:
        if page_id < 0:
            raise DiskError(f"negative page id {page_id}")
        if self._limit is not None and page_id >= self._limit:
            raise DiskError(
                f"page {page_id} beyond disk of {self._limit} pages"
            )

    # -- allocation -----------------------------------------------------------

    def allocate(self, n_pages: int) -> Extent:
        """Reserve the next ``n_pages`` contiguous pages."""
        if n_pages <= 0:
            raise ExtentError("extent must contain at least one page")
        start = self._next_free
        end = start + n_pages
        if self._limit is not None and end > self._limit:
            raise ExtentError(
                f"extent of {n_pages} pages exceeds disk of "
                f"{self._limit} pages"
            )
        self._next_free = end
        return Extent(start=start, length=n_pages)

    # -- snapshot / restore ---------------------------------------------------

    def dump_state(self) -> Tuple[Dict[int, bytes], int]:
        """Copy of ``(page images, allocation cursor)``.

        Page images are immutable ``bytes``, so the copy is shallow and
        cheap; together with :meth:`load_state` this lets a harness
        snapshot a freshly laid-out database and restore it onto a new
        disk instead of re-running the whole load phase.
        """
        return dict(self._pages), self._next_free

    def load_state(self, pages: Dict[int, bytes], next_free: int) -> None:
        """Install page images and allocation cursor from :meth:`dump_state`.

        Head position and statistics are untouched — callers restore
        onto a fresh disk, which matches the post-layout state
        (:func:`repro.cluster.layout.layout_database` resets both).
        """
        self._pages = dict(pages)
        self._next_free = next_free

    # -- I/O ------------------------------------------------------------------

    def _seek_to(self, page_id: int) -> int:
        distance = abs(page_id - self._head)
        self._head = page_id
        return distance

    def _settle_at(self, page_id: int) -> None:
        """Move the head without charging a seek.

        Used by :meth:`read_run` after the transfer: the pages of a
        contiguous run pass under the head for free, which is the whole
        point of run batching.
        """
        self._head = page_id

    def _page_image(self, page_id: int) -> Page:
        image = self._pages.get(page_id)
        if image is None:
            return Page(page_id)
        return Page.from_bytes(page_id, image)

    def set_io_listener(
        self, listener: Optional[IoListener]
    ) -> Optional[IoListener]:
        """Install an observer of physical reads; returns the previous one.

        The listener is called ``(seek_distance, n_pages)`` once per
        physical read operation — a multi-page run is a single call.
        The event-driven engine (:mod:`repro.storage.events`) uses this
        to price exactly the reads one asynchronous request performed.
        """
        previous = self._io_listener
        self._io_listener = listener
        return previous

    def add_io_observer(self, observer: IoObserver) -> IoObserver:
        """Attach an additive read observer; returns it for removal.

        Observers are called ``(start_page, seek_distance, n_pages)``
        after the exclusive listener, once per physical read.  They are
        the observability layer's tap (:mod:`repro.obs.devices`): any
        number can attach, and attaching one changes no accounting,
        head movement, or listener behaviour anywhere — observers only
        *watch* reads the caller already decided to perform.
        """
        self._io_observers.append(observer)
        return observer

    def remove_io_observer(self, observer: IoObserver) -> None:
        """Detach one observer added by :meth:`add_io_observer`."""
        if observer in self._io_observers:
            self._io_observers.remove(observer)

    def _notify_read(self, start: int, distance: int, n_pages: int) -> None:
        """Fan a physical read out to the listener and all observers."""
        if self._io_listener is not None:
            self._io_listener(distance, n_pages)
        for observer in self._io_observers:
            observer(start, distance, n_pages)

    def read(self, page_id: int) -> Page:
        """Read a page, moving the head and charging the seek.

        With a fault injector attached the read may raise a
        :class:`~repro.errors.FaultError` *before* the head moves or
        anything is accounted — a retried read then performs the exact
        seek the fault-free run would have.
        """
        self._check(page_id)
        if self.fault_injector is not None:
            self.fault_injector.before_read(page_id, 1)
        distance = self._seek_to(page_id)
        stats = self.stats
        stats.reads += 1
        stats.pages_read += 1
        stats.read_seek_total += distance
        stats.read_seeks.append(distance)
        if self._io_listener is not None or self._io_observers:
            self._notify_read(page_id, distance, 1)
        return self._page_image(page_id)

    def read_run(self, start: int, n_pages: int) -> List[Page]:
        """Read ``n_pages`` contiguous pages as one physical operation.

        One seek positions the head on ``start``; the run then
        transfers sequentially and the head settles on its last page.
        Accounting: one read, one seek of ``|start − head|`` pages,
        ``n_pages`` pages transferred.  This is the §4 "single disk
        access" promise extended to contiguous runs — the cost model in
        :class:`~repro.storage.costmodel.CostedDisk` adds per-page
        transfer time on top.
        """
        if n_pages <= 0:
            raise DiskError("read_run needs at least one page")
        self._check(start)
        self._check(start + n_pages - 1)
        if self.fault_injector is not None:
            self.fault_injector.before_read(start, n_pages)
        distance = self._seek_to(start)
        stats = self.stats
        if n_pages > 1:
            self._settle_at(start + n_pages - 1)
            stats.run_reads += 1
        stats.reads += 1
        stats.pages_read += n_pages
        stats.read_seek_total += distance
        stats.read_seeks.append(distance)
        if self._io_listener is not None or self._io_observers:
            self._notify_read(start, distance, n_pages)
        return [self._page_image(start + i) for i in range(n_pages)]

    def read_batch(self, page_ids: Sequence[int]) -> List[Page]:
        """Read several pages, coalescing contiguous ids into runs.

        ``page_ids`` is interpreted in the given order (the scheduler's
        sweep order); :func:`coalesce_runs` merges ascending or
        descending neighbours into single :meth:`read_run` calls, and
        anything non-contiguous falls back to a one-page run.  Returns
        the pages in request order (duplicates allowed — each id is
        read once).
        """
        pages: Dict[int, Page] = {}
        for run_start, run_length in coalesce_runs(page_ids):
            for page in self.read_run(run_start, run_length):
                pages[page.page_id] = page
        return [pages[page_id] for page_id in page_ids]

    def write(self, page: Page) -> None:
        """Write a page image back, moving the head."""
        self._check(page.page_id)
        distance = self._seek_to(page.page_id)
        self.stats.writes += 1
        self.stats.write_seek_total += distance
        self._pages[page.page_id] = page.to_bytes()

    # -- statistics -------------------------------------------------------------

    def reset_stats(self, head_to_zero: bool = True) -> None:
        """Forget all accounting; optionally park the head at page 0.

        Benchmarks call this between database loading and measurement,
        mirroring the paper's separation of load and query phases.
        """
        self.stats = DiskStats()
        if head_to_zero:
            self._head = 0

    def __repr__(self) -> str:
        limit = "unbounded" if self._limit is None else str(self._limit)
        return (
            f"SimulatedDisk(pages={limit}, allocated={self._next_free}, "
            f"head={self._head})"
        )
