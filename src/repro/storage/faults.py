"""Deterministic fault injection for the simulated disks.

The paper assumes a dedicated, perfectly reliable disk; a
production-scale assembly service cannot.  This module adds the failure
half of the device model without touching the success half:

* :class:`FaultInjector` wraps any :class:`~repro.storage.disk.
  SimulatedDisk` (including :class:`~repro.storage.costmodel.CostedDisk`
  and :class:`~repro.storage.multidisk.MultiDeviceDisk`) and, driven by
  one seeded RNG, injects **transient read errors**, **latency spikes**
  and **device-down intervals**.  Everything lives on the simulated
  clock — an op counter by default, rebound to the
  :class:`~repro.storage.events.EventClock` under an
  :class:`~repro.storage.events.AsyncIOEngine` — never wall time.
* :class:`RetryPolicy` bounds retries and prices the backoff between
  attempts through a :class:`~repro.storage.costmodel.CostModel`
  (default base backoff = one settle + one rotational latency, i.e.
  "wait out roughly one failed access before trying again").
* :class:`DeviceHealthTracker` is the per-device circuit breaker:
  consecutive failures (or an explicit ``retry_after`` from a
  :class:`~repro.errors.DeviceDownError`) quarantine a device until a
  recovery time; schedulers route around quarantined devices and
  re-queue their sweeps.

Design invariant, relied on by every baseline: a fault check happens
**before** the head moves or any statistic is charged, so a failed
attempt leaves the disk exactly as it found it, and the eventual
successful retry performs the identical seek the fault-free run would
have.  With all rates zero the injector is a no-op and every figure in
``results/ci_baseline.json`` stays bit-identical.

Determinism: the same :class:`FaultConfig` (seed included) replayed
against the same access sequence yields the same fault
:attr:`~FaultInjector.schedule`, the same counters and — under the
event engine — the same elapsed time, which the replay tests assert.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import (
    DeviceDownError,
    DiskError,
    TransientReadError,
)
from repro.storage.costmodel import CostModel
from repro.storage.disk import SimulatedDisk


@dataclass(frozen=True)
class DownInterval:
    """One device outage: ``[start, end)`` on the injector's clock."""

    device: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.device < 0:
            raise DiskError("down interval device must be non-negative")
        if self.end <= self.start:
            raise DiskError("down interval must end after it starts")

    def covers(self, now: float) -> bool:
        """Is ``now`` inside the outage?"""
        return self.start <= now < self.end


@dataclass(frozen=True)
class FaultConfig:
    """What to inject, and how often.

    ``read_error_rate`` / ``latency_spike_rate`` are per-physical-read
    probabilities drawn from one ``random.Random(seed)``.
    ``max_consecutive_failures`` bounds how many times in a row one
    page may fail transiently — after that many failures the next
    attempt is forced to succeed, so any retry policy with at least
    that many retries provably completes (the chaos property's
    termination argument); ``None`` removes the bound.
    ``always_fail_pages`` fault deterministically regardless of the
    rate (targeted tests).  ``down_intervals`` are outages on the
    injector clock (op count by default; engine milliseconds once an
    :class:`~repro.storage.events.AsyncIOEngine` binds its clock).
    """

    seed: int = 0
    read_error_rate: float = 0.0
    max_consecutive_failures: Optional[int] = 2
    latency_spike_rate: float = 0.0
    latency_spike_ms: float = 25.0
    down_intervals: Tuple[DownInterval, ...] = ()
    always_fail_pages: FrozenSet[int] = frozenset()

    def __post_init__(self) -> None:
        for name in ("read_error_rate", "latency_spike_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise DiskError(f"{name} must be in [0, 1], got {rate}")
        if self.latency_spike_ms < 0:
            raise DiskError("latency_spike_ms must be non-negative")
        if (
            self.max_consecutive_failures is not None
            and self.max_consecutive_failures <= 0
        ):
            raise DiskError(
                "max_consecutive_failures must be positive or None"
            )

    @property
    def enabled(self) -> bool:
        """Would this configuration ever inject anything?"""
        return bool(
            self.read_error_rate
            or self.latency_spike_rate
            or self.down_intervals
            or self.always_fail_pages
        )


@dataclass
class FaultStats:
    """What one injector did (attempt-level accounting)."""

    #: physical read attempts observed (fault checks performed).
    reads_seen: int = 0
    #: transient errors raised.
    transient_errors: int = 0
    #: latency spikes injected.
    latency_spikes: int = 0
    #: reads rejected because the device was down.
    down_rejections: int = 0
    #: milliseconds of spike latency injected.
    injected_spike_ms: float = 0.0
    #: milliseconds of retry backoff charged via :meth:`FaultInjector.
    #: charge_backoff`.
    backoff_ms: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat view for reports and replay comparisons."""
        return {
            "reads_seen": self.reads_seen,
            "transient_errors": self.transient_errors,
            "latency_spikes": self.latency_spikes,
            "down_rejections": self.down_rejections,
            "injected_spike_ms": self.injected_spike_ms,
            "backoff_ms": self.backoff_ms,
        }


class FaultInjector:
    """Seed-driven fault source attached to one simulated disk.

    The disk calls :meth:`before_read` at the top of every physical
    read (:meth:`~repro.storage.disk.SimulatedDisk.read` /
    :meth:`~repro.storage.disk.SimulatedDisk.read_run`), *before* any
    head movement or accounting.  The injector either returns (read
    proceeds normally, possibly with spike latency charged to
    :attr:`injected_ms_total`) or raises a
    :class:`~repro.errors.FaultError`, leaving the disk untouched.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self.stats = FaultStats()
        #: replayable fault log: ``("transient", op, page, attempt)``,
        #: ``("spike", op, page, ms)``, ``("down", op, device)`` tuples.
        self.schedule: List[Tuple] = []
        self._rng = random.Random(config.seed)
        self._consecutive: Dict[int, int] = {}
        self._clock_fn: Optional[Callable[[], float]] = None
        self._disk: Optional[SimulatedDisk] = None
        self._down_by_device: Dict[int, List[DownInterval]] = {}
        for interval in config.down_intervals:
            self._down_by_device.setdefault(interval.device, []).append(
                interval
            )
        for intervals in self._down_by_device.values():
            intervals.sort(key=lambda iv: iv.start)

    # -- wiring --------------------------------------------------------------

    def attach(self, disk: SimulatedDisk) -> "FaultInjector":
        """Install this injector on ``disk``; returns self for chaining."""
        if getattr(disk, "fault_injector", None) is not None:
            raise DiskError("disk already has a fault injector attached")
        disk.fault_injector = self
        self._disk = disk
        return self

    def detach(self) -> None:
        """Remove this injector from its disk (fault-free from now on)."""
        if self._disk is not None:
            self._disk.fault_injector = None
            self._disk = None

    def bind_clock(self, clock_fn: Callable[[], float]) -> None:
        """Drive down intervals from an external simulated clock.

        :class:`~repro.storage.events.AsyncIOEngine` binds its event
        clock here so outages are expressed in engine milliseconds;
        without a bound clock the injector counts read attempts
        (including failed ones), so outages expire even on the
        synchronous path.
        """
        self._clock_fn = clock_fn

    @property
    def now(self) -> float:
        """Current injector time (bound clock, or attempts seen)."""
        if self._clock_fn is not None:
            return self._clock_fn()
        return float(self.stats.reads_seen)

    # -- time accounting -----------------------------------------------------

    @property
    def injected_ms_total(self) -> float:
        """All simulated milliseconds this injector added (spikes +
        backoffs).  The event engine folds deltas of this into the
        issuing device's timeline."""
        return self.stats.injected_spike_ms + self.stats.backoff_ms

    def charge_backoff(self, milliseconds: float) -> None:
        """Account retry backoff as injected simulated time."""
        if milliseconds < 0:
            raise DiskError("backoff must be non-negative")
        self.stats.backoff_ms += milliseconds

    # -- the hook ------------------------------------------------------------

    def _device_of(self, page_id: int) -> int:
        device_fn = getattr(self._disk, "device_of", None)
        if device_fn is None:
            return 0
        return device_fn(page_id)

    def next_recovery(self, device: int, now: float) -> Optional[float]:
        """End of the outage covering ``now`` on ``device`` (or None)."""
        for interval in self._down_by_device.get(device, ()):
            if interval.covers(now):
                return interval.end
        return None

    def before_read(self, start: int, n_pages: int) -> None:
        """Fault gate, called by the disk before serving a read.

        Raises :class:`~repro.errors.DeviceDownError` inside an outage,
        :class:`~repro.errors.TransientReadError` on a transient draw
        (bounded per page by ``max_consecutive_failures``), and
        otherwise returns — possibly after charging a latency spike.
        The check order (down, forced, transient, spike) is part of the
        replay contract.
        """
        self.stats.reads_seen += 1
        op = self.stats.reads_seen
        device = self._device_of(start)

        recovery = self.next_recovery(device, self.now)
        if recovery is not None:
            self.stats.down_rejections += 1
            self.schedule.append(("down", op, device))
            raise DeviceDownError(
                f"device {device} down until {recovery:g}",
                device=device,
                retry_after=recovery,
            )

        consecutive = self._consecutive.get(start, 0)
        bound = self.config.max_consecutive_failures
        may_fail = bound is None or consecutive < bound

        if may_fail and start in self.config.always_fail_pages:
            self._raise_transient(op, start, device, consecutive)

        if self.config.read_error_rate > 0.0:
            # Always draw so the RNG stream is independent of whether
            # the consecutive bound suppressed the previous fault.
            draw = self._rng.random()
            if may_fail and draw < self.config.read_error_rate:
                self._raise_transient(op, start, device, consecutive)
        self._consecutive.pop(start, None)

        if self.config.latency_spike_rate > 0.0:
            if self._rng.random() < self.config.latency_spike_rate:
                spike = self.config.latency_spike_ms
                self.stats.latency_spikes += 1
                self.stats.injected_spike_ms += spike
                self.schedule.append(("spike", op, start, spike))

    def _raise_transient(
        self, op: int, page_id: int, device: int, consecutive: int
    ) -> None:
        attempt = consecutive + 1
        self._consecutive[page_id] = attempt
        self.stats.transient_errors += 1
        self.schedule.append(("transient", op, page_id, attempt))
        raise TransientReadError(
            f"transient read error on page {page_id} "
            f"(attempt {attempt})",
            page_id=page_id,
            device=device,
            attempt=attempt,
        )

    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.config.seed}, "
            f"rate={self.config.read_error_rate}, "
            f"faults={self.stats.transient_errors})"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with simulated-time exponential backoff.

    ``base_backoff_ms=None`` derives the base from the cost model at
    call time: one ``settle`` plus one ``rotational_latency`` — wait
    out roughly one failed positioning before retrying.  Attempt ``k``
    (0-based) backs off ``base * backoff_multiplier**k`` milliseconds,
    charged to the injector's simulated clock, never wall time.
    """

    max_retries: int = 3
    base_backoff_ms: Optional[float] = None
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise DiskError("max_retries must be non-negative")
        if self.base_backoff_ms is not None and self.base_backoff_ms < 0:
            raise DiskError("base_backoff_ms must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise DiskError("backoff_multiplier must be >= 1")

    def should_retry(self, attempt: int) -> bool:
        """May a 0-based ``attempt`` be retried under this policy?"""
        return attempt < self.max_retries

    def backoff_ms(
        self, attempt: int, cost_model: Optional[CostModel] = None
    ) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        if self.base_backoff_ms is not None:
            base = self.base_backoff_ms
        else:
            model = cost_model if cost_model is not None else CostModel()
            base = model.settle + model.rotational_latency
        return base * self.backoff_multiplier**attempt


@dataclass
class _DeviceHealth:
    """Mutable per-device record of the circuit breaker."""

    consecutive_failures: int = 0
    failures: int = 0
    successes: int = 0
    quarantines: int = 0
    quarantined_until: float = 0.0


class DeviceHealthTracker:
    """Per-device circuit breaker over injector/engine time.

    ``failure_threshold`` consecutive failures open the breaker for
    ``cooldown`` clock units; an explicit ``retry_after`` (a device
    reporting its own outage) opens it until that time directly.  A
    success closes the breaker immediately (the successful probe).
    Devices unknown to the tracker are created on first touch, so one
    tracker serves disks of any width.
    """

    def __init__(
        self, n_devices: int = 1, failure_threshold: int = 3,
        cooldown: float = 64.0,
    ) -> None:
        if failure_threshold <= 0:
            raise DiskError("failure_threshold must be positive")
        if cooldown < 0:
            raise DiskError("cooldown must be non-negative")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._devices: Dict[int, _DeviceHealth] = {
            device: _DeviceHealth() for device in range(max(0, n_devices))
        }

    def _get(self, device: int) -> _DeviceHealth:
        health = self._devices.get(device)
        if health is None:
            health = _DeviceHealth()
            self._devices[device] = health
        return health

    def record_success(self, device: int) -> None:
        """A read on ``device`` succeeded: close the breaker."""
        health = self._get(device)
        health.successes += 1
        health.consecutive_failures = 0
        health.quarantined_until = 0.0

    def record_failure(
        self,
        device: int,
        now: float = 0.0,
        retry_after: Optional[float] = None,
    ) -> None:
        """A read on ``device`` faulted; maybe open the breaker."""
        health = self._get(device)
        health.failures += 1
        health.consecutive_failures += 1
        if retry_after is not None:
            if retry_after > health.quarantined_until:
                health.quarantines += 1
                health.quarantined_until = retry_after
        elif health.consecutive_failures >= self.failure_threshold:
            until = now + self.cooldown
            if until > health.quarantined_until:
                health.quarantines += 1
                health.quarantined_until = until

    def available(self, device: int, now: float) -> bool:
        """May ``device`` be issued to at time ``now``?"""
        health = self._devices.get(device)
        return health is None or now >= health.quarantined_until

    def quarantined_until(self, device: int) -> float:
        """When ``device`` reopens (0.0 if it was never quarantined)."""
        return self._get(device).quarantined_until

    def next_recovery(self, now: float) -> Optional[float]:
        """Earliest reopening among currently quarantined devices."""
        pending = [
            h.quarantined_until
            for h in self._devices.values()
            if h.quarantined_until > now
        ]
        return min(pending) if pending else None

    def total_quarantines(self) -> int:
        """Breaker openings across all devices."""
        return sum(h.quarantines for h in self._devices.values())

    def snapshot(self) -> Dict[int, Dict[str, float]]:
        """Per-device counters as plain dicts (diagnostics/replay)."""
        return {
            device: {
                "consecutive_failures": h.consecutive_failures,
                "failures": h.failures,
                "successes": h.successes,
                "quarantines": h.quarantines,
                "quarantined_until": h.quarantined_until,
            }
            for device, h in sorted(self._devices.items())
        }
