"""Multiple physical devices (paper Section 7).

"The situation becomes more complex when the database is stored on
more than one physical device.  At present, the assembly operator can
only handle one device.  A possible solution could involve a
server-per-device architecture.  Each server would maintain a queue of
requests and would fetch objects on behalf of one or more assembly
operators."

:class:`MultiDeviceDisk` models an array of devices behind one page
address space: device ``d`` owns pages ``[d*S, (d+1)*S)`` where ``S``
is ``pages_per_device``.  Each device has its **own head**; a read
charges seek distance only against its device's head, so two devices
never interfere — the physical property that makes striping pay.

``allocate`` hands each extent wholly to one device, cycling devices
round-robin, so inter-object type clusters stripe naturally.  The
matching per-device request queues live in
:class:`repro.core.multidevice.MultiDeviceScheduler`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import DiskError, ExtentError
from repro.storage.disk import DiskStats, Extent, SimulatedDisk


class MultiDeviceDisk(SimulatedDisk):
    """An array of independent devices with one page address space."""

    def __init__(self, n_devices: int, pages_per_device: int) -> None:
        if n_devices <= 0:
            raise DiskError("need at least one device")
        if pages_per_device <= 0:
            raise DiskError("each device needs at least one page")
        super().__init__(n_pages=n_devices * pages_per_device)
        self.n_devices = n_devices
        self.pages_per_device = pages_per_device
        # Per-device head, parked at the device's first page.
        self._heads: List[int] = [
            d * pages_per_device for d in range(n_devices)
        ]
        # Per-device allocation cursor and round-robin pointer.
        self._device_free: List[int] = list(self._heads)
        self._next_device = 0
        #: per-device stats (aggregate stats stay on ``self.stats``).
        self.device_stats: List[DiskStats] = [
            DiskStats() for _ in range(n_devices)
        ]

    # -- geometry ------------------------------------------------------------

    def device_of(self, page_id: int) -> int:
        """Which device owns ``page_id``."""
        self._check(page_id)
        return page_id // self.pages_per_device

    def head_of(self, device: int) -> int:
        """Current head position of one device."""
        return self._heads[device]

    @property
    def head_position(self) -> int:
        """Head of device 0 (single-device callers); prefer head_of."""
        return self._heads[0]

    # -- seek model ---------------------------------------------------------------

    def _seek_to(self, page_id: int) -> int:
        device = page_id // self.pages_per_device
        distance = abs(page_id - self._heads[device])
        self._heads[device] = page_id
        return distance

    def _settle_at(self, page_id: int) -> None:
        self._heads[page_id // self.pages_per_device] = page_id

    def _record_device_read(self, device: int, n_pages: int) -> None:
        stats = self.device_stats[device]
        stats.reads += 1
        stats.pages_read += n_pages
        if n_pages > 1:
            stats.run_reads += 1
        seek = self.stats.read_seeks[-1]
        stats.read_seek_total += seek
        stats.read_seeks.append(seek)

    def write(self, page) -> None:
        """Write a page, mirroring the charge into its device's ledger.

        The seek is charged against the owning device's head via the
        overridden ``_seek_to``; recording it here too keeps the
        invariant that the per-device stats always sum to the
        aggregate — for writes exactly as for reads, and consistently
        across ``reset_stats``.
        """
        before = self.stats.write_seek_total
        super().write(page)
        stats = self.device_stats[self.device_of(page.page_id)]
        stats.writes += 1
        stats.write_seek_total += self.stats.write_seek_total - before

    def read(self, page_id: int):
        page = super().read(page_id)
        self._record_device_read(page_id // self.pages_per_device, 1)
        return page

    def read_run(self, start: int, n_pages: int) -> List:
        """Read a run, splitting it at device boundaries.

        A run that crosses devices becomes one physical read per
        device: each chunk charges a seek against its own device's
        head, exactly as if the chunks had been requested separately.
        I/O observers (:meth:`~repro.storage.disk.SimulatedDisk.
        add_io_observer`) fire once per chunk with that chunk's start
        page, so a multi-device observer can attribute every sample to
        its owning device via :meth:`device_of`.
        """
        if n_pages <= 0:
            raise DiskError("read_run needs at least one page")
        pages: List = []
        cursor, remaining = start, n_pages
        while remaining > 0:
            device = self.device_of(cursor)
            device_end = (device + 1) * self.pages_per_device
            chunk = min(remaining, device_end - cursor)
            pages.extend(super().read_run(cursor, chunk))
            self._record_device_read(device, chunk)
            cursor += chunk
            remaining -= chunk
        return pages

    # -- allocation -------------------------------------------------------------------

    def allocate(self, n_pages: int) -> Extent:
        """Allocate one extent wholly on the next device (round-robin).

        Devices that cannot fit the extent are skipped; when no device
        can, :class:`ExtentError` is raised.
        """
        if n_pages <= 0:
            raise ExtentError("extent must contain at least one page")
        for _attempt in range(self.n_devices):
            device = self._next_device
            self._next_device = (self._next_device + 1) % self.n_devices
            extent = self._try_allocate_on(device, n_pages)
            if extent is not None:
                return extent
        raise ExtentError(
            f"no device has {n_pages} contiguous free pages"
        )

    def allocate_on(self, device: int, n_pages: int) -> Extent:
        """Allocate an extent on a specific device."""
        if not 0 <= device < self.n_devices:
            raise ExtentError(f"no device {device}")
        extent = self._try_allocate_on(device, n_pages)
        if extent is None:
            raise ExtentError(
                f"device {device} cannot fit {n_pages} more pages"
            )
        return extent

    def _try_allocate_on(self, device: int, n_pages: int):
        start = self._device_free[device]
        end = start + n_pages
        device_end = (device + 1) * self.pages_per_device
        if end > device_end:
            return None
        self._device_free[device] = end
        return Extent(start=start, length=n_pages)

    # -- statistics -------------------------------------------------------------------------

    def reset_stats(self, head_to_zero: bool = True) -> None:
        super().reset_stats(head_to_zero=False)
        self.device_stats = [DiskStats() for _ in range(self.n_devices)]
        if head_to_zero:
            self._heads = [
                d * self.pages_per_device for d in range(self.n_devices)
            ]

    def __repr__(self) -> str:
        return (
            f"MultiDeviceDisk(devices={self.n_devices}, "
            f"pages_per_device={self.pages_per_device})"
        )
