"""repro — Efficient Assembly of Complex Objects (SIGMOD 1991).

A faithful, laptop-scale reproduction of Keller, Graefe & Maier's
assembly operator on a Volcano-style query engine with a
seek-accounting simulated disk.

Quickstart::

    from repro import (
        SimulatedDisk, ObjectStore, Assembly, ListSource,
        InterObjectClustering, layout_database,
    )
    from repro.workloads import generate_acob, make_template

    db = generate_acob(1000)
    store = ObjectStore(SimulatedDisk())
    layout = layout_database(
        db.complex_objects, store,
        InterObjectClustering(disk_order=db.type_ids_depth_first()),
        shared=db.shared_pool,
    )
    op = Assembly(
        ListSource(layout.root_order), store, make_template(db),
        window_size=50, scheduler="elevator",
    )
    for complex_object in op.rows():
        ...  # pointer-swizzled, ready to traverse

    print(store.disk.stats.avg_seek_per_read)  # the paper's metric
"""

from repro.cluster import (
    InterObjectClustering,
    IntraObjectClustering,
    LayoutResult,
    Unclustered,
    layout_database,
)
from repro.core import (
    AssembledComplexObject,
    AssembledObject,
    Assembly,
    AssemblyStats,
    AssemblyTracer,
    ComponentIterator,
    DeviceServerAssembly,
    InterleavedAssemblies,
    Predicate,
    StackedAssembly,
    Template,
    TemplateNode,
    binary_tree_template,
    make_scheduler,
    max_window_for_buffer,
    pin_bound,
    tune_window,
)
from repro.database import BoundQuery, Database
from repro.errors import ReproError
from repro.objects import GraphBuilder, TypeRegistry
from repro.query import ComplexObjectQuery, Optimizer, retrieve
from repro.storage import (
    BTree,
    BufferManager,
    HeapFile,
    ObjectStore,
    Oid,
    SimulatedDisk,
)
from repro.volcano import Filter, ListSource, Project, VolcanoIterator

__version__ = "1.0.0"

__all__ = [
    "AssembledComplexObject",
    "AssembledObject",
    "Assembly",
    "AssemblyStats",
    "AssemblyTracer",
    "BTree",
    "BoundQuery",
    "ComplexObjectQuery",
    "Database",
    "DeviceServerAssembly",
    "Optimizer",
    "retrieve",
    "InterleavedAssemblies",
    "max_window_for_buffer",
    "pin_bound",
    "tune_window",
    "BufferManager",
    "ComponentIterator",
    "Filter",
    "GraphBuilder",
    "HeapFile",
    "InterObjectClustering",
    "IntraObjectClustering",
    "LayoutResult",
    "ListSource",
    "ObjectStore",
    "Oid",
    "Predicate",
    "Project",
    "ReproError",
    "SimulatedDisk",
    "StackedAssembly",
    "Template",
    "TemplateNode",
    "TypeRegistry",
    "Unclustered",
    "VolcanoIterator",
    "binary_tree_template",
    "layout_database",
    "make_scheduler",
    "__version__",
]
