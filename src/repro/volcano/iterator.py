"""The Volcano iterator protocol.

"Volcano queries are composed of operators that provide a uniform
iterator interface.  Each Volcano operator conforms to the iterator
paradigm by providing open, next and close calls." (paper, Section 3).

Every physical operator in this package — scans, joins, sort, the
assembly operator itself — subclasses :class:`VolcanoIterator` and is
driven through exactly that protocol.  ``next`` returns one row or
``None`` at end-of-stream (demand-driven dataflow / "lazy evaluation").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from enum import Enum
from typing import Any, Iterator as PyIterator, List, Optional

from repro.errors import IteratorStateError

#: Rows are opaque to the protocol; operators document their own shape.
Row = Any


class _State(Enum):
    CREATED = "created"
    OPEN = "open"
    CLOSED = "closed"


class VolcanoIterator(ABC):
    """Base class enforcing the open → next* → close lifecycle.

    Subclasses implement ``_open``, ``_next`` and ``_close``; the
    public methods guard the state machine so protocol violations fail
    fast instead of yielding garbage.  Iterators are re-openable after
    ``close`` (Volcano re-opens inner inputs of nested-loops joins).
    """

    def __init__(self) -> None:
        self._state = _State.CREATED

    # -- protocol ----------------------------------------------------------

    def open(self) -> None:
        """Prepare to produce rows (opens inputs recursively)."""
        if self._state is _State.OPEN:
            raise IteratorStateError(f"{self!r} is already open")
        self._open()
        self._state = _State.OPEN

    def next(self) -> Optional[Row]:
        """Produce the next row, or ``None`` at end-of-stream."""
        if self._state is not _State.OPEN:
            raise IteratorStateError(f"next() on non-open {self!r}")
        return self._next()

    def close(self) -> None:
        """Release resources (closes inputs recursively)."""
        if self._state is not _State.OPEN:
            raise IteratorStateError(f"close() on non-open {self!r}")
        self._close()
        self._state = _State.CLOSED

    # -- subclass hooks -------------------------------------------------------

    @abstractmethod
    def _open(self) -> None:
        """Subclass part of :meth:`open`."""

    @abstractmethod
    def _next(self) -> Optional[Row]:
        """Subclass part of :meth:`next`."""

    def _close(self) -> None:
        """Subclass part of :meth:`close` (default: nothing)."""

    # -- conveniences -------------------------------------------------------------

    @property
    def is_open(self) -> bool:
        """Is the iterator currently open?"""
        return self._state is _State.OPEN

    def rows(self) -> PyIterator[Row]:
        """Drive the full protocol as a Python generator."""
        self.open()
        try:
            while True:
                row = self.next()
                if row is None:
                    return
                yield row
        finally:
            if self._state is _State.OPEN:
                self.close()

    def execute(self) -> List[Row]:
        """Run to completion and collect every row."""
        return list(self.rows())

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._state.value})"


class ListSource(VolcanoIterator):
    """An iterator over a pre-materialized list of rows.

    Used as the leaf feeding root OIDs to the assembly operator and as
    a test stub for any operator input.
    """

    def __init__(self, items: List[Row]) -> None:
        super().__init__()
        self._items = list(items)
        self._pos = 0

    def _open(self) -> None:
        self._pos = 0

    def _next(self) -> Optional[Row]:
        if self._pos >= len(self._items):
            return None
        row = self._items[self._pos]
        self._pos += 1
        return row


class GeneratorSource(VolcanoIterator):
    """Adapts a generator *factory* to the iterator protocol.

    The factory is called at every ``open`` so the source is
    re-openable, unlike wrapping a bare generator.
    """

    def __init__(self, factory) -> None:
        super().__init__()
        self._factory = factory
        self._gen = None

    def _open(self) -> None:
        self._gen = self._factory()

    def _next(self) -> Optional[Row]:
        try:
            return next(self._gen)
        except StopIteration:
            return None

    def _close(self) -> None:
        if self._gen is not None:
            close = getattr(self._gen, "close", None)
            if close is not None:
                close()
            self._gen = None
