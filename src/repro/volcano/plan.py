"""Query-plan utilities: explain trees and plan validation.

Volcano plans are plain Python object trees — each operator holds its
inputs in attributes.  :func:`explain` renders such a tree the way
database EXPLAIN output does, discovering child operators by
introspection so no operator needs to cooperate; operators *may*
implement ``describe()`` to add detail to their line.

:func:`collect_operators` and :func:`validate_plan` support tests and
tooling: the former flattens a plan, the latter catches the classic
plan-building mistake of wiring one operator instance into two places
(its open/next/close state cannot serve two consumers).

Two rewrite/planning rules live here as well, both over the assembly
operator of :mod:`repro.volcano.assembly`:

* :func:`push_down_component_filters` folds ``ComponentFilter``
  predicates into the assembly template directly below them
  (Section 6.5's selective assembly), preserving the row multiset;
* :func:`plan_assembly_join` is a small cost-based rule choosing
  *assemble-then-join* vs *join-then-assemble* for a join between
  assembled objects and an in-memory build relation, returning an
  :class:`AssemblyJoinPlan` whose ``explain()`` renders the choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from repro.errors import PlanError
from repro.volcano.iterator import Row, VolcanoIterator


def child_operators(operator: VolcanoIterator) -> List[VolcanoIterator]:
    """The operator's direct inputs, found by attribute introspection.

    Attributes holding a :class:`VolcanoIterator` (or a list/tuple of
    them) are considered inputs, in attribute definition order.
    """
    children: List[VolcanoIterator] = []
    for name, value in vars(operator).items():
        if name.startswith("__"):
            continue
        if isinstance(value, VolcanoIterator):
            children.append(value)
        elif isinstance(value, (list, tuple)):
            children.extend(
                item for item in value if isinstance(item, VolcanoIterator)
            )
    return children


def describe_operator(operator: VolcanoIterator) -> str:
    """One-line description: ``describe()`` if provided, else the class."""
    describe = getattr(operator, "describe", None)
    if callable(describe):
        return str(describe())
    return type(operator).__name__


#: Plans deeper than this are assumed cyclic (an operator reachable
#: from itself) rather than genuinely that tall.
MAX_PLAN_DEPTH = 64


def walk_plan(
    plan: VolcanoIterator, depth: int = 0
) -> Iterator[Tuple[int, VolcanoIterator]]:
    """Yield ``(depth, operator)`` pairs in pre-order.

    Raises :class:`PlanError` past :data:`MAX_PLAN_DEPTH` so a cyclic
    plan fails loudly instead of recursing forever.
    """
    if depth > MAX_PLAN_DEPTH:
        raise PlanError(
            f"plan deeper than {MAX_PLAN_DEPTH} operators; "
            f"is an operator its own input?"
        )
    yield depth, plan
    for child in child_operators(plan):
        yield from walk_plan(child, depth + 1)


def collect_operators(plan: VolcanoIterator) -> List[VolcanoIterator]:
    """Every operator of the plan, pre-order."""
    return [operator for _depth, operator in walk_plan(plan)]


def explain(plan: VolcanoIterator) -> str:
    """Render the plan as an indented operator tree.

    Example output::

        Filter
          Assembly
            ListSource
    """
    lines = [
        f"{'  ' * depth}{describe_operator(operator)}"
        for depth, operator in walk_plan(plan)
    ]
    return "\n".join(lines)


def validate_plan(plan: VolcanoIterator) -> None:
    """Reject plans that share one operator instance between consumers.

    A Volcano iterator is a stateful cursor; feeding the same instance
    to two parents produces interleaved, meaningless streams.  Raises
    :class:`PlanError` naming the duplicated operator.
    """
    seen = {}
    for _depth, operator in walk_plan(plan):
        key = id(operator)
        seen[key] = seen.get(key, 0) + 1
        if seen[key] > 1:
            raise PlanError(
                f"operator {describe_operator(operator)} appears "
                f"{seen[key]} times in the plan; each consumer needs "
                f"its own instance"
            )


# -- rewrite: predicate pushdown into assembly templates ---------------------


def replace_child(
    parent: VolcanoIterator, old: VolcanoIterator, new: VolcanoIterator
) -> bool:
    """Swap one input of ``parent`` in place; returns True on success.

    Works through the same attribute introspection as
    :func:`child_operators`, including list and tuple members.
    """
    for name, value in vars(parent).items():
        if name.startswith("__"):
            continue
        if value is old:
            setattr(parent, name, new)
            return True
        if isinstance(value, list):
            for index, item in enumerate(value):
                if item is old:
                    value[index] = new
                    return True
        elif isinstance(value, tuple) and any(item is old for item in value):
            setattr(
                parent,
                name,
                tuple(new if item is old else item for item in value),
            )
            return True
    return False


@dataclass(frozen=True)
class PushdownDecision:
    """One filter folded into an assembly template by the rewrite."""

    label: str
    predicate: str
    selectivity: float

    def describe(self) -> str:
        """One-line account of the pushdown, for logs and explain output."""
        return (
            f"pushed {self.predicate} into template node {self.label!r} "
            f"(selectivity {self.selectivity:.2f})"
        )


def push_down_component_filters(
    plan: VolcanoIterator,
) -> Tuple[VolcanoIterator, List[PushdownDecision]]:
    """Fold every ``ComponentFilter`` sitting directly on an
    ``AssemblyOperator`` into that operator's template.

    Returns the rewritten plan root and the decisions taken, in
    application order.  The rule is conservative: a filter separated
    from the assembly by another operator is left in place.  Row
    multisets are preserved (the predicate is evaluated on the same
    component record either way); disk statistics are *not* — aborting
    failing objects early is the entire point (Section 6.5).
    """
    from repro.volcano.assembly import AssemblyOperator, ComponentFilter

    decisions: List[PushdownDecision] = []
    changed = True
    while changed:
        changed = False
        parents = {id(plan): None}
        for _depth, operator in walk_plan(plan):
            for child in child_operators(operator):
                parents[id(child)] = operator
        for _depth, operator in walk_plan(plan):
            if not isinstance(operator, ComponentFilter):
                continue
            target = child_operators(operator)
            if len(target) != 1 or not isinstance(target[0], AssemblyOperator):
                continue
            assembly = target[0]
            if operator.is_open or assembly.is_open:
                raise PlanError("cannot rewrite a plan while it is open")
            assembly.push_predicate(operator.label, operator.predicate)
            decisions.append(
                PushdownDecision(
                    label=operator.label,
                    predicate=str(operator.predicate),
                    selectivity=operator.predicate.selectivity,
                )
            )
            parent = parents[id(operator)]
            if parent is None:
                plan = assembly
            else:
                replace_child(parent, operator, assembly)
            changed = True
            break
    return plan, decisions


# -- cost-based rule: assemble-then-join vs join-then-assemble ---------------

#: CPU cost, in page-cost units, charged per row the join-first shape
#: routes through its extra semi-join + re-join (its only overhead:
#: both joins are in-memory and touch no pages).
JOIN_CPU_COST_PER_ROW = 0.01


def estimate_assembly_cost(
    n_objects: int, template, pages_spanned: int
) -> float:
    """Expected cost (page-cost units) of assembling ``n_objects``.

    Uses the template's selectivity statistics exactly as Section 5
    prescribes: a passing object fetches every node; a failing one is
    aborted after reaching its shallowest predicate.  The elevator
    sweeps the layout once (``pages_spanned`` of head travel) and pays
    one transfer per fetch.
    """
    template = template.finalize()
    nodes = template.node_count
    pass_rate = 1.0
    shallowest = nodes
    for node in template.nodes():
        if node.predicate is not None:
            pass_rate *= node.predicate.selectivity
            shallowest = min(shallowest, node.depth + 1)
    expected_fetches = n_objects * (
        pass_rate * nodes + (1.0 - pass_rate) * shallowest
    )
    return float(pages_spanned) + expected_fetches


@dataclass(frozen=True)
class AssemblyJoinChoice:
    """The rule's verdict, with both cost estimates for explain()."""

    shape: str
    cost_assemble_first: float
    cost_join_first: float
    join_selectivity: float

    def describe(self) -> str:
        """One-line account of the chosen shape and both cost estimates."""
        return (
            f"join order: {self.shape} "
            f"(assemble-first={self.cost_assemble_first:.1f}, "
            f"join-first={self.cost_join_first:.1f}, "
            f"join selectivity={self.join_selectivity:.2f})"
        )


@dataclass(frozen=True)
class AssemblyJoinPlan:
    """A chosen physical plan plus the costing that picked it."""

    plan: VolcanoIterator
    choice: AssemblyJoinChoice

    def explain(self) -> str:
        """The plan tree with the join-order decision appended."""
        return explain(self.plan) + f"\n-- {self.choice.describe()}"


def _assemble_then_join(
    roots, build_rows, build_key, store, template, engine_kwargs
) -> VolcanoIterator:
    from repro.volcano.assembly import AssemblyOperator
    from repro.volcano.iterator import ListSource
    from repro.volcano.joins import HashJoin

    return HashJoin(
        build=ListSource(list(build_rows)),
        probe=AssemblyOperator(
            ListSource(list(roots)), store, template, **engine_kwargs
        ),
        build_key=build_key,
        probe_key=lambda row: row.root_oid,
    )


def _join_then_assemble(
    roots, build_rows, build_key, store, template, engine_kwargs
) -> VolcanoIterator:
    from repro.volcano.assembly import AssemblyOperator
    from repro.volcano.filters import Filter
    from repro.volcano.iterator import ListSource
    from repro.volcano.joins import HashJoin

    matches = {build_key(row) for row in build_rows}
    semi_join = Filter(ListSource(list(roots)), matches.__contains__)
    return HashJoin(
        build=ListSource(list(build_rows)),
        probe=AssemblyOperator(semi_join, store, template, **engine_kwargs),
        build_key=build_key,
        probe_key=lambda row: row.root_oid,
    )


def plan_assembly_join(
    roots: List[Row],
    build_rows: List[Row],
    build_key: Callable[[Row], object],
    store,
    template,
    *,
    pages_spanned: Optional[int] = None,
    **engine_kwargs: object,
) -> AssemblyJoinPlan:
    """Cost-based choice between assemble-then-join and join-then-assemble.

    ``build_rows`` is an in-memory relation keyed by root OID
    (``build_key``).  Both shapes emit ``(assembled, build_row)`` pairs
    with identical multisets; the rule picks the cheaper one:

    * *assemble-then-join* assembles every root, then hash-joins;
    * *join-then-assemble* semi-joins the root list against the build
      keys first, assembling only matching roots — cheaper in I/O by
      the join selectivity, plus a per-row CPU epsilon for the extra
      hash lookups.  Ties (join selectivity 1.0) go to the simpler
      assemble-then-join shape.
    """
    roots = list(roots)
    build_rows = list(build_rows)
    if pages_spanned is None:
        # Fallback: assume the layout spans about one page per object.
        pages_spanned = max(len(roots), 1)
    matches = {build_key(row) for row in build_rows}
    matching = sum(1 for root in roots if root in matches)
    join_selectivity = matching / len(roots) if roots else 1.0

    cost_assemble_first = estimate_assembly_cost(
        len(roots), template, pages_spanned
    )
    cost_join_first = estimate_assembly_cost(
        matching, template, pages_spanned
    ) + JOIN_CPU_COST_PER_ROW * (len(roots) + len(build_rows))

    if cost_join_first < cost_assemble_first:
        shape = "join-then-assemble"
        plan = _join_then_assemble(
            roots, build_rows, build_key, store, template, engine_kwargs
        )
    else:
        shape = "assemble-then-join"
        plan = _assemble_then_join(
            roots, build_rows, build_key, store, template, engine_kwargs
        )
    choice = AssemblyJoinChoice(
        shape=shape,
        cost_assemble_first=cost_assemble_first,
        cost_join_first=cost_join_first,
        join_selectivity=join_selectivity,
    )
    return AssemblyJoinPlan(plan=plan, choice=choice)
