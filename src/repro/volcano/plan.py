"""Query-plan utilities: explain trees and plan validation.

Volcano plans are plain Python object trees — each operator holds its
inputs in attributes.  :func:`explain` renders such a tree the way
database EXPLAIN output does, discovering child operators by
introspection so no operator needs to cooperate; operators *may*
implement ``describe()`` to add detail to their line.

:func:`collect_operators` and :func:`validate_plan` support tests and
tooling: the former flattens a plan, the latter catches the classic
plan-building mistake of wiring one operator instance into two places
(its open/next/close state cannot serve two consumers).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.errors import PlanError
from repro.volcano.iterator import VolcanoIterator


def child_operators(operator: VolcanoIterator) -> List[VolcanoIterator]:
    """The operator's direct inputs, found by attribute introspection.

    Attributes holding a :class:`VolcanoIterator` (or a list/tuple of
    them) are considered inputs, in attribute definition order.
    """
    children: List[VolcanoIterator] = []
    for name, value in vars(operator).items():
        if name.startswith("__"):
            continue
        if isinstance(value, VolcanoIterator):
            children.append(value)
        elif isinstance(value, (list, tuple)):
            children.extend(
                item for item in value if isinstance(item, VolcanoIterator)
            )
    return children


def describe_operator(operator: VolcanoIterator) -> str:
    """One-line description: ``describe()`` if provided, else the class."""
    describe = getattr(operator, "describe", None)
    if callable(describe):
        return str(describe())
    return type(operator).__name__


#: Plans deeper than this are assumed cyclic (an operator reachable
#: from itself) rather than genuinely that tall.
MAX_PLAN_DEPTH = 64


def walk_plan(
    plan: VolcanoIterator, depth: int = 0
) -> Iterator[Tuple[int, VolcanoIterator]]:
    """Yield ``(depth, operator)`` pairs in pre-order.

    Raises :class:`PlanError` past :data:`MAX_PLAN_DEPTH` so a cyclic
    plan fails loudly instead of recursing forever.
    """
    if depth > MAX_PLAN_DEPTH:
        raise PlanError(
            f"plan deeper than {MAX_PLAN_DEPTH} operators; "
            f"is an operator its own input?"
        )
    yield depth, plan
    for child in child_operators(plan):
        yield from walk_plan(child, depth + 1)


def collect_operators(plan: VolcanoIterator) -> List[VolcanoIterator]:
    """Every operator of the plan, pre-order."""
    return [operator for _depth, operator in walk_plan(plan)]


def explain(plan: VolcanoIterator) -> str:
    """Render the plan as an indented operator tree.

    Example output::

        Filter
          Assembly
            ListSource
    """
    lines = [
        f"{'  ' * depth}{describe_operator(operator)}"
        for depth, operator in walk_plan(plan)
    ]
    return "\n".join(lines)


def validate_plan(plan: VolcanoIterator) -> None:
    """Reject plans that share one operator instance between consumers.

    A Volcano iterator is a stateful cursor; feeding the same instance
    to two parents produces interleaved, meaningless streams.  Raises
    :class:`PlanError` naming the duplicated operator.
    """
    seen = {}
    for _depth, operator in walk_plan(plan):
        key = id(operator)
        seen[key] = seen.get(key, 0) + 1
        if seen[key] > 1:
            raise PlanError(
                f"operator {describe_operator(operator)} appears "
                f"{seen[key]} times in the plan; each consumer needs "
                f"its own instance"
            )
