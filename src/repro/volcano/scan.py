"""Scan operators: file scan, index scan, and the TID-scan baseline.

The TID scan is the related-work seed of the whole paper (Section 2):
looking up pointers retrieved from an unclustered index is expensive;
sorting the full pointer set first avoids seeks but "may require
substantial sort space"; the assembly operator generalizes the middle
ground.  :class:`TidScan` implements both endpoints (naive order and
fully sorted order) so benchmarks can bracket the assembly operator.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from repro.errors import PlanError
from repro.storage.btree import BTree
from repro.storage.heap import HeapFile
from repro.storage.oid import Oid, Rid
from repro.storage.record import ObjectRecord
from repro.storage.store import ObjectStore
from repro.volcano.iterator import Row, VolcanoIterator


class FileScan(VolcanoIterator):
    """Full scan of a heap file, in physical (file) order.

    Yields ``(rid, record_bytes)``, or ``decode(rid, bytes)`` when a
    decoder is supplied.
    """

    def __init__(
        self,
        heap: HeapFile,
        decode: Optional[Callable[[Rid, bytes], Row]] = None,
    ) -> None:
        super().__init__()
        self._heap = heap
        self._decode = decode
        self._iter: Optional[Iterator[Tuple[Rid, bytes]]] = None

    def _open(self) -> None:
        self._iter = self._heap.scan()

    def _next(self) -> Optional[Row]:
        assert self._iter is not None
        try:
            rid, data = next(self._iter)
        except StopIteration:
            return None
        if self._decode is None:
            return rid, data
        return self._decode(rid, data)

    def _close(self) -> None:
        self._iter = None


class IndexScan(VolcanoIterator):
    """Range scan over a B+-tree, in key order.

    Yields ``(key, value_bytes)``, or ``decode(key, value)`` rows.
    """

    def __init__(
        self,
        index: BTree,
        low: Optional[int] = None,
        high: Optional[int] = None,
        decode: Optional[Callable[[int, bytes], Row]] = None,
    ) -> None:
        super().__init__()
        if low is not None and high is not None and low > high:
            raise PlanError(f"index scan range [{low}, {high}] is empty")
        self._index = index
        self._low = low
        self._high = high
        self._decode = decode
        self._iter: Optional[Iterator[Tuple[int, bytes]]] = None

    def _open(self) -> None:
        self._iter = self._index.range_scan(self._low, self._high)

    def _next(self) -> Optional[Row]:
        assert self._iter is not None
        try:
            key, value = next(self._iter)
        except StopIteration:
            return None
        if self._decode is None:
            return key, value
        return self._decode(key, value)

    def _close(self) -> None:
        self._iter = None


class TidScan(VolcanoIterator):
    """Fetch objects for a stream of OIDs (Kooi's TID-scan join).

    ``order='input'`` looks pointers up in arrival order — the naive
    unclustered-index behaviour.  ``order='sorted'`` materializes the
    *entire* pointer set, sorts it by physical page, and fetches in
    physical order — minimal seeks, maximal "sort space", exactly the
    trade-off Section 2 describes.  Yields ``(oid, ObjectRecord)``.
    """

    #: accepted fetch orders.
    ORDERS = ("input", "sorted")

    def __init__(
        self,
        source: VolcanoIterator,
        store: ObjectStore,
        order: str = "input",
    ) -> None:
        super().__init__()
        if order not in self.ORDERS:
            raise PlanError(f"order must be one of {self.ORDERS}, got {order!r}")
        self._source = source
        self._store = store
        self._order = order
        self._pending: Optional[List[Oid]] = None
        self._pos = 0

    def _open(self) -> None:
        self._source.open()
        self._pos = 0
        if self._order == "sorted":
            oids: List[Oid] = []
            while True:
                row = self._source.next()
                if row is None:
                    break
                oids.append(self._as_oid(row))
            oids.sort(key=self._store.page_of)
            self._pending = oids
        else:
            self._pending = None

    @staticmethod
    def _as_oid(row: Row) -> Oid:
        if isinstance(row, Oid):
            return row
        raise PlanError(f"TidScan input must yield Oids, got {type(row).__name__}")

    def _next(self) -> Optional[Tuple[Oid, ObjectRecord]]:
        if self._pending is not None:
            if self._pos >= len(self._pending):
                return None
            oid = self._pending[self._pos]
            self._pos += 1
        else:
            row = self._source.next()
            if row is None:
                return None
            oid = self._as_oid(row)
        return oid, self._store.fetch(oid)

    def _close(self) -> None:
        self._source.close()
        self._pending = None


class StoreScan(VolcanoIterator):
    """Physical-order scan of an object-store extent.

    Yields ``(oid, ObjectRecord)`` in page order — the clustered-scan
    baseline, and a convenient way to enumerate a whole database.
    """

    def __init__(self, store: ObjectStore, extent_name_pages) -> None:
        super().__init__()
        self._store = store
        self._extent = extent_name_pages
        self._iter = None

    def _open(self) -> None:
        self._iter = self._store.scan_extent(self._extent)

    def _next(self) -> Optional[Row]:
        assert self._iter is not None
        try:
            return next(self._iter)
        except StopIteration:
            return None

    def _close(self) -> None:
        self._iter = None
