"""Partitioning (exchange-style) operators.

"Since parallelism is encapsulated in Volcano [the exchange operator],
it can be used for all existing operators without changing their code"
(paper, Section 7).  True multi-process parallelism is out of scope for
a deterministic simulation — and the paper itself runs "in
single-process mode with parallelism … disabled" — but the *structural*
role of exchange matters for the future-work discussion: partitioned
assembly introduces shared-component synchronization between
partitions (Section 5, reason three).

:class:`PartitionedExecute` therefore reproduces exchange's plan shape:
it splits an input into ``n`` partitions, runs a plan fragment over
each partition *serially*, and interleaves their outputs in demand
order.  Benchmarks use it to demonstrate why independent per-partition
elevator queues break the exclusive-device assumption (Section 7).
"""

from __future__ import annotations

import inspect
from typing import Callable, List, Optional

from repro.errors import PlanError
from repro.volcano.iterator import ListSource, Row, VolcanoIterator


def _fragment_wants_index(fragment: Callable) -> bool:
    """Does ``fragment`` accept a second positional (partition index)?

    Lets shard-local fragments bind partition-specific state — the
    store replica or fabric shard the fragment should read from —
    while single-argument fragments keep working unchanged.
    """
    try:
        signature = inspect.signature(fragment)
    except (TypeError, ValueError):  # builtins without introspection
        return False
    positional = [
        parameter
        for parameter in signature.parameters.values()
        if parameter.kind
        in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        )
    ]
    if any(
        parameter.kind is inspect.Parameter.VAR_POSITIONAL
        for parameter in signature.parameters.values()
    ):
        return True
    return len(positional) >= 2


class Partition(VolcanoIterator):
    """Materialize the child and expose one round-robin partition."""

    def __init__(
        self, child: VolcanoIterator, n_partitions: int, index: int
    ) -> None:
        super().__init__()
        if n_partitions <= 0:
            raise PlanError("n_partitions must be positive")
        if not 0 <= index < n_partitions:
            raise PlanError(f"partition index {index} out of range")
        self._child = child
        self._n = n_partitions
        self._index = index
        self._rows: List[Row] = []
        self._pos = 0

    def _open(self) -> None:
        self._child.open()
        self._rows = []
        position = 0
        while True:
            row = self._child.next()
            if row is None:
                break
            if position % self._n == self._index:
                self._rows.append(row)
            position += 1
        self._child.close()
        self._pos = 0

    def _next(self) -> Optional[Row]:
        if self._pos >= len(self._rows):
            return None
        row = self._rows[self._pos]
        self._pos += 1
        return row

    def _close(self) -> None:
        self._rows = []


class PartitionedExecute(VolcanoIterator):
    """Run a plan fragment per round-robin partition; merge demand-driven.

    ``fragment(source)`` builds the per-partition plan over a
    :class:`ListSource` of that partition's rows.  A fragment taking a
    second positional argument is called as ``fragment(source, index)``
    with the partition number — how shard-local fragments pick their
    own store (see :mod:`repro.fabric.parallel`).  Partitions execute
    serially but their outputs interleave round-robin, which is how
    exchange's merge side appears to its consumer.
    """

    def __init__(
        self,
        rows: List[Row],
        n_partitions: int,
        fragment: Callable[[VolcanoIterator], VolcanoIterator],
    ) -> None:
        super().__init__()
        if n_partitions <= 0:
            raise PlanError("n_partitions must be positive")
        self._input_rows = list(rows)
        self._n = n_partitions
        self._fragment = fragment
        self._fragment_indexed = _fragment_wants_index(fragment)
        self._plans: List[VolcanoIterator] = []
        self._alive: List[bool] = []
        self._turn = 0

    def _open(self) -> None:
        partitions: List[List[Row]] = [[] for _ in range(self._n)]
        for position, row in enumerate(self._input_rows):
            partitions[position % self._n].append(row)
        if self._fragment_indexed:
            self._plans = [
                self._fragment(ListSource(part), index)
                for index, part in enumerate(partitions)
            ]
        else:
            self._plans = [
                self._fragment(ListSource(part)) for part in partitions
            ]
        for plan in self._plans:
            plan.open()
        self._alive = [True] * self._n
        self._turn = 0

    def _next(self) -> Optional[Row]:
        remaining = sum(self._alive)
        while remaining:
            index = self._turn % self._n
            self._turn += 1
            if not self._alive[index]:
                continue
            row = self._plans[index].next()
            if row is None:
                self._alive[index] = False
                remaining -= 1
                continue
            return row
        return None

    def _close(self) -> None:
        for plan, alive in zip(self._plans, self._alive):
            if plan.is_open:
                plan.close()
        self._plans = []
