"""Assembly as a composable Volcano operator (paper, Figure 1).

The paper draws the assembly operator *inside* the set processor: it
"conforms to the iterator paradigm by providing open, next and close
calls" and therefore composes with every other physical operator.
:mod:`repro.core.assembly` already implements the engine as a
:class:`~repro.volcano.iterator.VolcanoIterator`, but plans had to wire
it in by hand, outside the algebra's planning utilities.  This module
closes the gap with three operators:

* :class:`AssemblyOperator` — the algebra-facing wrapper.  It owns the
  template (so plan rewrite rules can push predicates into it before
  ``open``), builds a fresh engine at every ``open`` (clean re-open
  semantics, identical code path — and therefore identical
  ``DiskStats`` — to driving :class:`~repro.core.assembly.Assembly`
  directly), and renders its physical parameters in ``explain()``.
* :class:`ComponentFilter` — a :class:`~repro.volcano.filters.Filter`
  that evaluates a storage-level :class:`~repro.core.predicates.Predicate`
  against one labelled component of each assembled complex object.
  Because it names the component and carries the predicate's
  selectivity, the :func:`repro.volcano.plan.push_down_component_filters`
  rewrite rule can fold it into the template below (Section 6.5's
  selective assembly) without changing the row multiset.
* :class:`ParallelAssembly` — the paper's §7 "parallel assembly" via
  exchange: root rows are partitioned (round-robin, or by a fabric
  shard router), each partition is assembled by its own engine over
  its own store replica or shard, and the partition outputs merge in
  deterministic round-robin demand order exactly like
  :class:`~repro.volcano.exchange.PartitionedExecute`.  Elapsed time
  is priced on the PR 3 event clock: the ``"sync"`` driver reads each
  partition's :class:`~repro.storage.costmodel.CostedDisk` service
  total (bit-identical to the event engine at depth 1 — the E-3
  anchor) and reports the max over partitions; the ``"pipelined"``
  driver runs each partition under a real
  :class:`~repro.storage.events.AsyncIOEngine` completion loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from repro.errors import PlanError
from repro.volcano.filters import Filter
from repro.volcano.iterator import ListSource, Row, VolcanoIterator

if TYPE_CHECKING:  # pragma: no cover - types only; see note below
    from repro.core.assembly import Assembly
    from repro.core.predicates import Predicate
    from repro.core.template import Template
    from repro.storage.record import ObjectRecord
    from repro.storage.store import ObjectStore

# NOTE: repro.core.assembly itself subclasses VolcanoIterator, so this
# module sits *below* repro.core in the import graph despite wrapping
# its engine.  All repro.core / repro.storage imports are deferred to
# call sites to keep ``import repro`` acyclic.


class AssemblyOperator(VolcanoIterator):
    """Composable assembly: wraps the engine behind the iterator contract.

    The operator owns ``template`` (a clone is taken on every predicate
    pushdown, so the caller's template is never mutated) and
    constructs a fresh :class:`~repro.core.assembly.Assembly` engine at
    each ``open`` from the stored parameters.  Rows are
    :class:`~repro.core.assembled.AssembledComplexObject` instances,
    exactly as the bare engine emits them.
    """

    def __init__(
        self,
        source: VolcanoIterator,
        store: ObjectStore,
        template: Template,
        **engine_kwargs: object,
    ) -> None:
        super().__init__()
        self._source = source
        self._store = store
        self._template = template.finalize()
        self._engine_kwargs = dict(engine_kwargs)
        #: number of predicates folded in by rewrite rules (explain()).
        self.pushed_predicates = 0
        # The engine is deliberately kept in a dict, not an attribute:
        # plan introspection (plan.child_operators) scans attributes
        # for VolcanoIterator values, and the engine holds the same
        # source instance this operator does — a visible engine would
        # make the source appear twice and fail validate_plan.
        self._engine_box = {"engine": None}

    # -- plan-facing surface -------------------------------------------------

    @property
    def template(self) -> Template:
        """The (possibly rewritten) template the next ``open`` will use."""
        return self._template

    @property
    def store(self) -> ObjectStore:
        """The object store assembled from."""
        return self._store

    @property
    def engine(self) -> Optional[Assembly]:
        """The engine of the current/last execution (None before open)."""
        return self._engine_box["engine"]

    @property
    def stats(self):
        """Engine statistics of the current/last execution."""
        engine = self._engine_box["engine"]
        if engine is None:
            raise PlanError("AssemblyOperator has no stats before open()")
        return engine.stats

    def push_predicate(self, label: str, predicate: Predicate) -> None:
        """Fold ``predicate`` onto the template node ``label``.

        Mirrors the optimizer's pushdown rule: the template is cloned,
        an existing predicate on the node conjoins (selectivities
        multiply), and the clone is re-annotated.  Only legal while
        the operator is not open.
        """
        from repro.core.predicates import conjunction

        if self.is_open:
            raise PlanError("cannot push a predicate into an open operator")
        template = self._template.clone()
        node = template.node(label)
        if node.predicate is not None:
            predicate = conjunction([node.predicate, predicate])
        node.predicate = predicate
        self._template = template.reannotate()
        self.pushed_predicates += 1

    def describe(self) -> str:
        """One-line ``explain`` rendering: window, scheduler, predicates."""
        scheduler = self._engine_kwargs.get("scheduler", "elevator")
        name = scheduler if isinstance(scheduler, str) else type(scheduler).__name__
        return (
            f"AssemblyOperator(window={self._engine_kwargs.get('window_size', 1)}, "
            f"scheduler={name}, predicates={self._template.predicate_count}, "
            f"pushed={self.pushed_predicates})"
        )

    # -- iterator protocol ---------------------------------------------------

    def _open(self) -> None:
        from repro.core.assembly import Assembly

        engine = Assembly(
            self._source, self._store, self._template, **self._engine_kwargs
        )
        engine.open()
        self._engine_box["engine"] = engine

    def _next(self) -> Optional[Row]:
        return self._engine_box["engine"].next()

    def _close(self) -> None:
        # The engine is kept (not dropped) so stats stay inspectable
        # after close, exactly like the bare driver's post-run reads.
        self._engine_box["engine"].close()


def component_record(component) -> "ObjectRecord":
    """Rebuild the storage-level record of an assembled component.

    Predicates are storage-level (they see ints and raw refs), so
    post-assembly evaluation must reconstruct the record exactly as
    the engine saw it at fetch time.
    """
    from repro.storage.record import ObjectRecord, RecordFormat

    fmt = RecordFormat(
        n_ints=len(component.ints), n_refs=len(component.ref_oids)
    )
    return ObjectRecord(
        ints=list(component.ints), refs=list(component.ref_oids), fmt=fmt
    )


class ComponentFilter(Filter):
    """Filter assembled complex objects on one labelled component.

    Rows whose assembly lacks the component (degraded partial results)
    fail the filter — the same outcome pushdown produces, where a
    faulted predicate subtree aborts the owner.
    """

    def __init__(
        self, child: VolcanoIterator, label: str, predicate: Predicate
    ) -> None:
        self.label = label
        self.predicate = predicate
        super().__init__(child, self._passes)

    def _passes(self, row: Row) -> bool:
        root = getattr(row, "root", None)
        component = root.find(self.label) if root is not None else None
        if component is None:
            return False
        return self.predicate.evaluate(component_record(component))

    def describe(self) -> str:
        """One-line ``explain`` rendering: the filtered label and predicate."""
        return f"ComponentFilter({self.label}: {self.predicate})"


#: Accepted ``driver`` values for :class:`ParallelAssembly`.
PARALLEL_DRIVERS = ("sync", "pipelined")


class ParallelAssembly(VolcanoIterator):
    """Exchange-parallel assembly over per-partition stores.

    ``source`` yields root OIDs; ``stores`` holds one independent
    store per partition (bit-identical replicas for round-robin
    partitioning, or fabric shards each holding only its own objects —
    see :mod:`repro.fabric.parallel` for both builders).
    ``partition_fn(row, position)`` routes each root to a partition;
    the default is positional round-robin, exchange's classic deal.

    The merge is demand-driven round-robin over the partition streams,
    so output order is a deterministic function of the partition
    streams — the property the differential conformance suite pins.

    Drivers:

    * ``"sync"`` — each partition runs the plain synchronous engine;
      partitions interleave per ``next()`` call.  Elapsed time is read
      off each partition's :class:`~repro.storage.costmodel.CostedDisk`
      service-time accumulator, which the PR 3 event engine reproduces
      bit-for-bit at issue depth 1 (the E-3 anchor) — so ``max`` over
      partitions *is* the event-clock elapsed of the parallel run.
    * ``"pipelined"`` — each partition runs to completion at ``open``
      under its own :class:`~repro.storage.events.AsyncIOEngine` and
      :class:`~repro.core.multidevice.PipelinedAssembly` completion
      loop (issue-ahead via ``issue_depth``); rows are then merged
      from the buffered partition outputs in the same round-robin
      order.  Elapsed is ``max`` over the engines' clocks.
    """

    def __init__(
        self,
        source: VolcanoIterator,
        stores: Sequence[ObjectStore],
        template: Template,
        *,
        partition_fn: Optional[Callable[[Row, int], int]] = None,
        driver: str = "sync",
        issue_depth: int = 1,
        **engine_kwargs: object,
    ) -> None:
        super().__init__()
        if not stores:
            raise PlanError("ParallelAssembly needs at least one store")
        if driver not in PARALLEL_DRIVERS:
            raise PlanError(
                f"driver must be one of {PARALLEL_DRIVERS}, got {driver!r}"
            )
        if issue_depth <= 0:
            raise PlanError("issue_depth must be positive")
        self._source = source
        self._stores = list(stores)
        self._template = template.finalize()
        self._partition_fn = partition_fn
        self._driver = driver
        self._issue_depth = issue_depth
        self._engine_kwargs = dict(engine_kwargs)
        self._engines: List[Assembly] = []
        self._io_engines: List[object] = []
        self._buffers: List[List[Row]] = []
        self._positions: List[int] = []
        self._alive: List[bool] = []
        self._service_t0: List[float] = []
        self._turn = 0

    @property
    def n_partitions(self) -> int:
        """Degree of parallelism (one engine per store)."""
        return len(self._stores)

    def describe(self) -> str:
        """One-line ``explain`` rendering: partitions, window, driver."""
        scheduler = self._engine_kwargs.get("scheduler", "elevator")
        name = scheduler if isinstance(scheduler, str) else type(scheduler).__name__
        return (
            f"ParallelAssembly(partitions={self.n_partitions}, "
            f"window={self._engine_kwargs.get('window_size', 1)}, "
            f"scheduler={name}, driver={self._driver})"
        )

    def elapsed_ms(self) -> float:
        """Event-clock elapsed time of the last run: max over partitions.

        Requires costed partition disks under the ``"sync"`` driver;
        uncosted disks report 0.0.
        """
        if self._driver == "pipelined":
            if not self._io_engines:
                return 0.0
            return max(engine.elapsed for engine in self._io_engines)
        if not self._service_t0:
            return 0.0
        return max(
            getattr(store.disk, "service_time_total", 0.0) - t0
            for store, t0 in zip(self._stores, self._service_t0)
        )

    # -- iterator protocol ---------------------------------------------------

    def _deal(self) -> List[List[Row]]:
        """Drain the source and deal roots to partitions."""
        partitions: List[List[Row]] = [[] for _ in self._stores]
        self._source.open()
        position = 0
        while True:
            row = self._source.next()
            if row is None:
                break
            if self._partition_fn is None:
                index = position % len(self._stores)
            else:
                index = self._partition_fn(row, position)
            if not 0 <= index < len(self._stores):
                raise PlanError(
                    f"partition_fn routed row {position} to {index}, "
                    f"outside 0..{len(self._stores) - 1}"
                )
            partitions[index].append(row)
            position += 1
        self._source.close()
        return partitions

    def _open(self) -> None:
        partitions = self._deal()
        self._service_t0 = [
            getattr(store.disk, "service_time_total", 0.0)
            for store in self._stores
        ]
        from repro.core.assembly import Assembly

        self._engines = [
            Assembly(
                ListSource(part),
                store,
                self._template,
                **self._engine_kwargs,
            )
            for part, store in zip(partitions, self._stores)
        ]
        self._io_engines = []
        self._buffers = [[] for _ in self._engines]
        self._positions = [0] * len(self._engines)
        self._alive = [True] * len(self._engines)
        self._turn = 0
        if self._driver == "pipelined":
            from repro.core.multidevice import PipelinedAssembly
            from repro.storage.costmodel import CostModel
            from repro.storage.events import AsyncIOEngine

            for index, (engine, store) in enumerate(
                zip(self._engines, self._stores)
            ):
                cost_model = getattr(store.disk, "cost_model", None)
                io_engine = AsyncIOEngine(
                    store.disk,
                    cost_model if cost_model is not None else CostModel(),
                )
                pipeline = PipelinedAssembly(
                    engine,
                    io_engine,
                    issue_depth=self._issue_depth,
                    batch_pages=int(
                        self._engine_kwargs.get("batch_pages", 1)
                    ),
                )
                self._buffers[index] = pipeline.run()
                self._io_engines.append(io_engine)
        else:
            for engine in self._engines:
                engine.open()

    def _next(self) -> Optional[Row]:
        n = len(self._engines)
        remaining = sum(self._alive)
        while remaining:
            index = self._turn % n
            self._turn += 1
            if not self._alive[index]:
                continue
            row = self._fetch(index)
            if row is None:
                self._alive[index] = False
                remaining -= 1
                continue
            return row
        return None

    def _fetch(self, index: int) -> Optional[Row]:
        if self._driver == "pipelined":
            buffer = self._buffers[index]
            position = self._positions[index]
            if position >= len(buffer):
                return None
            self._positions[index] = position + 1
            return buffer[position]
        return self._engines[index].next()

    def _close(self) -> None:
        for engine in self._engines:
            if engine.is_open:
                engine.close()
        self._buffers = []
