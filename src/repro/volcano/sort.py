"""External merge sort.

Volcano's sort operator "enforces a physical property of the data that
is not logically apparent (i.e. sort order)" — the paper introduces the
assembly operator by analogy to it (Section 3).  This implementation is
a classic run-formation + multiway-merge external sort: input rows are
collected into memory-bounded runs, each run is sorted and spilled to a
temporary heap file on the simulated disk, and the runs are merged with
a tournament (heap) of run cursors.

Spilled rows are serialized with :mod:`pickle`, so any picklable row
shape sorts.  When the input fits in one run, nothing is spilled.
"""

from __future__ import annotations

import heapq
import pickle
from typing import Callable, List, Optional, Tuple

from repro.errors import PlanError
from repro.storage.heap import HeapFile
from repro.storage.store import ObjectStore
from repro.volcano.iterator import Row, VolcanoIterator

#: Default rows held in memory per run.
DEFAULT_RUN_CAPACITY = 1024


class ExternalSort(VolcanoIterator):
    """Sort the child's rows by ``key`` using bounded memory.

    ``run_capacity`` caps in-memory rows; ``store`` supplies the disk
    for spilled runs (omit it to force a purely in-memory sort, which
    raises :class:`PlanError` if a second run would be needed).
    """

    def __init__(
        self,
        child: VolcanoIterator,
        key: Callable[[Row], object],
        run_capacity: int = DEFAULT_RUN_CAPACITY,
        store: Optional[ObjectStore] = None,
        reverse: bool = False,
    ) -> None:
        super().__init__()
        if run_capacity <= 0:
            raise PlanError("run_capacity must be positive")
        self._child = child
        self._key = key
        self._capacity = run_capacity
        self._store = store
        self._reverse = reverse
        self._memory_run: List[Row] = []
        self._memory_pos = 0
        self._run_files: List[HeapFile] = []
        self._merge_heap: List[Tuple[object, int, int, Row]] = []
        self._cursors: List = []
        #: number of spilled runs in the last execution.
        self.runs_spilled = 0

    # -- run formation ------------------------------------------------------

    def _spill_run(self, rows: List[Row]) -> None:
        if self._store is None:
            raise PlanError(
                "input exceeds run_capacity and no store was supplied "
                "for spilling"
            )
        rows.sort(key=self._key, reverse=self._reverse)
        run = HeapFile(
            self._store.disk,
            self._store.buffer,
            name=f"sort-run-{len(self._run_files)}",
        )
        for row in rows:
            run.append(pickle.dumps(row))
        run.flush()
        self._run_files.append(run)
        self.runs_spilled += 1

    def _open(self) -> None:
        self._child.open()
        self._memory_run = []
        self._run_files = []
        self.runs_spilled = 0
        batch: List[Row] = []
        while True:
            row = self._child.next()
            if row is None:
                break
            batch.append(row)
            if len(batch) >= self._capacity:
                self._spill_run(batch)
                batch = []
        self._child.close()

        if not self._run_files:
            # Everything fit in memory: one sorted run, no I/O.
            batch.sort(key=self._key, reverse=self._reverse)
            self._memory_run = batch
            self._memory_pos = 0
            self._cursors = []
            self._merge_heap = []
            return

        if batch:
            self._spill_run(batch)

        # Initialize the multiway merge over spilled runs.
        self._cursors = [run.scan() for run in self._run_files]
        self._merge_heap = []
        for run_id, cursor in enumerate(self._cursors):
            self._push_from(run_id, cursor, 0)

    def _sort_key(self, row: Row) -> object:
        key = self._key(row)
        if self._reverse:
            # Only numeric keys support reverse merging across runs.
            return -key  # type: ignore[operator]
        return key

    def _push_from(self, run_id: int, cursor, seq: int) -> None:
        try:
            _rid, data = next(cursor)
        except StopIteration:
            return
        row = pickle.loads(data)
        heapq.heappush(
            self._merge_heap, (self._sort_key(row), run_id, seq, row)
        )

    # -- production -----------------------------------------------------------

    def _next(self) -> Optional[Row]:
        if self._memory_run:
            if self._memory_pos >= len(self._memory_run):
                return None
            row = self._memory_run[self._memory_pos]
            self._memory_pos += 1
            return row
        if not self._merge_heap:
            return None
        _key, run_id, seq, row = heapq.heappop(self._merge_heap)
        self._push_from(run_id, self._cursors[run_id], seq + 1)
        return row

    def _close(self) -> None:
        self._memory_run = []
        self._merge_heap = []
        self._cursors = []
        self._run_files = []
