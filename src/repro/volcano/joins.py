"""Join operators: nested loops, hash join, pointer join, one-to-one match.

Section 2 of the paper relates complex-object assembly to the
pointer-based join methods of relational systems ("Assembly resembles a
functional join, linking objects based on inter-object references").
This module provides the relational comparanda:

* :class:`NestedLoopsJoin` and :class:`HashJoin` — the classical
  value-based joins the Revelation optimizer would choose between;
* :class:`PointerJoin` — a functional join that dereferences an
  embedded OID per outer row (Shekita & Carey's pointer-based join);
* :class:`OneToOneMatch` — the Volcano one-to-one match operator of
  Keller & Graefe (reference [17] of the paper), a single physical
  operator computing join, semi-join, anti-join, outer joins, and the
  set operations, driven by match/unmatched flags.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import PlanError
from repro.storage.oid import Oid
from repro.storage.store import ObjectStore
from repro.volcano.iterator import Row, VolcanoIterator


class NestedLoopsJoin(VolcanoIterator):
    """For each outer row, re-open the inner and emit matching pairs.

    ``combine(outer, inner)`` shapes output rows; ``predicate`` decides
    matches.  The inner input is re-opened per outer row, as in
    Volcano.
    """

    def __init__(
        self,
        outer: VolcanoIterator,
        inner: VolcanoIterator,
        predicate: Callable[[Row, Row], bool],
        combine: Callable[[Row, Row], Row] = lambda o, i: (o, i),
    ) -> None:
        super().__init__()
        self._outer = outer
        self._inner = inner
        self._predicate = predicate
        self._combine = combine
        self._current_outer: Optional[Row] = None
        self._inner_open = False

    def _open(self) -> None:
        self._outer.open()
        self._current_outer = None
        self._inner_open = False

    def _advance_outer(self) -> bool:
        if self._inner_open:
            self._inner.close()
            self._inner_open = False
        self._current_outer = self._outer.next()
        if self._current_outer is None:
            return False
        self._inner.open()
        self._inner_open = True
        return True

    def _next(self) -> Optional[Row]:
        while True:
            if self._current_outer is None:
                if not self._advance_outer():
                    return None
            inner_row = self._inner.next()
            if inner_row is None:
                self._current_outer = None
                continue
            if self._predicate(self._current_outer, inner_row):
                return self._combine(self._current_outer, inner_row)

    def _close(self) -> None:
        if self._inner_open:
            self._inner.close()
            self._inner_open = False
        self._outer.close()


class HashJoin(VolcanoIterator):
    """Classic build/probe equi-join.

    The build input is consumed entirely at ``open``; the probe side
    streams.  ``build_key`` / ``probe_key`` extract the join keys;
    ``combine(probe_row, build_row)`` shapes the output.
    """

    def __init__(
        self,
        build: VolcanoIterator,
        probe: VolcanoIterator,
        build_key: Callable[[Row], object],
        probe_key: Callable[[Row], object],
        combine: Callable[[Row, Row], Row] = lambda p, b: (p, b),
    ) -> None:
        super().__init__()
        self._build = build
        self._probe = probe
        self._build_key = build_key
        self._probe_key = probe_key
        self._combine = combine
        self._table: Dict[object, List[Row]] = {}
        self._matches: List[Row] = []
        self._match_pos = 0
        self._current_probe: Optional[Row] = None

    def _open(self) -> None:
        self._table = {}
        self._build.open()
        while True:
            row = self._build.next()
            if row is None:
                break
            self._table.setdefault(self._build_key(row), []).append(row)
        self._build.close()
        self._probe.open()
        self._matches = []
        self._match_pos = 0

    def _next(self) -> Optional[Row]:
        while True:
            if self._match_pos < len(self._matches):
                build_row = self._matches[self._match_pos]
                self._match_pos += 1
                return self._combine(self._current_probe, build_row)
            probe_row = self._probe.next()
            if probe_row is None:
                return None
            self._current_probe = probe_row
            self._matches = self._table.get(self._probe_key(probe_row), [])
            self._match_pos = 0

    def _close(self) -> None:
        self._probe.close()
        self._table = {}
        self._matches = []


class PointerJoin(VolcanoIterator):
    """Functional join: dereference an OID embedded in each outer row.

    ``extract(row)`` returns the OID to chase (or ``None`` to skip the
    row); the referenced object is fetched from the store
    object-at-a-time, in input order — precisely the access pattern the
    assembly operator improves on.  Yields ``combine(row, oid, record)``.
    """

    def __init__(
        self,
        outer: VolcanoIterator,
        store: ObjectStore,
        extract: Callable[[Row], Optional[Oid]],
        combine: Callable[[Row, Oid, object], Row] = lambda r, o, rec: (r, o, rec),
    ) -> None:
        super().__init__()
        self._outer = outer
        self._store = store
        self._extract = extract
        self._combine = combine

    def _open(self) -> None:
        self._outer.open()

    def _next(self) -> Optional[Row]:
        while True:
            row = self._outer.next()
            if row is None:
                return None
            oid = self._extract(row)
            if oid is None or oid.is_null():
                continue
            record = self._store.fetch(oid)
            return self._combine(row, oid, record)

    def _close(self) -> None:
        self._outer.close()


class OneToOneMatch(VolcanoIterator):
    """The Volcano one-to-one match operator (Keller & Graefe 1989).

    Matches each left row with at most one right row on equal keys and
    emits according to three switches:

    * ``emit_matched`` — matched pairs (join / intersection),
    * ``emit_left_unmatched`` — left rows with no partner
      (anti-join / difference / the left half of outer joins),
    * ``emit_right_unmatched`` — right rows with no partner.

    With all three on and ``combine`` padding ``None``, this is a full
    outer union-style match; classical set operations fall out of the
    switch settings (see :meth:`difference`, :meth:`intersection`,
    :meth:`union` constructors).
    """

    def __init__(
        self,
        left: VolcanoIterator,
        right: VolcanoIterator,
        left_key: Callable[[Row], object],
        right_key: Callable[[Row], object],
        emit_matched: bool = True,
        emit_left_unmatched: bool = False,
        emit_right_unmatched: bool = False,
        combine: Callable[[Optional[Row], Optional[Row]], Row] = lambda l, r: (l, r),
    ) -> None:
        super().__init__()
        if not (emit_matched or emit_left_unmatched or emit_right_unmatched):
            raise PlanError("one-to-one match emits nothing")
        self._left = left
        self._right = right
        self._left_key = left_key
        self._right_key = right_key
        self._emit_matched = emit_matched
        self._emit_left = emit_left_unmatched
        self._emit_right = emit_right_unmatched
        self._combine = combine
        self._output: List[Row] = []
        self._pos = 0

    # -- named configurations ------------------------------------------------

    @classmethod
    def intersection(
        cls, left: VolcanoIterator, right: VolcanoIterator
    ) -> "OneToOneMatch":
        """Rows present on both sides (by identity key)."""
        return cls(
            left,
            right,
            left_key=lambda r: r,
            right_key=lambda r: r,
            emit_matched=True,
            combine=lambda l, _r: l,
        )

    @classmethod
    def difference(
        cls, left: VolcanoIterator, right: VolcanoIterator
    ) -> "OneToOneMatch":
        """Rows on the left with no partner on the right."""
        return cls(
            left,
            right,
            left_key=lambda r: r,
            right_key=lambda r: r,
            emit_matched=False,
            emit_left_unmatched=True,
            combine=lambda l, _r: l,
        )

    @classmethod
    def union(
        cls, left: VolcanoIterator, right: VolcanoIterator
    ) -> "OneToOneMatch":
        """All rows, each identity once."""
        return cls(
            left,
            right,
            left_key=lambda r: r,
            right_key=lambda r: r,
            emit_matched=True,
            emit_left_unmatched=True,
            emit_right_unmatched=True,
            combine=lambda l, r: l if l is not None else r,
        )

    # -- execution ----------------------------------------------------------------

    def _open(self) -> None:
        # Materialize the right side into one-to-one buckets.
        buckets: Dict[object, List[Row]] = {}
        self._right.open()
        while True:
            row = self._right.next()
            if row is None:
                break
            buckets.setdefault(self._right_key(row), []).append(row)
        self._right.close()

        self._output = []
        self._left.open()
        while True:
            row = self._left.next()
            if row is None:
                break
            key = self._left_key(row)
            partners = buckets.get(key)
            if partners:
                partner = partners.pop(0)
                if not partners:
                    del buckets[key]
                if self._emit_matched:
                    self._output.append(self._combine(row, partner))
            elif self._emit_left:
                self._output.append(self._combine(row, None))
        self._left.close()

        if self._emit_right:
            for partners in buckets.values():
                for row in partners:
                    self._output.append(self._combine(None, row))
        self._pos = 0

    def _next(self) -> Optional[Row]:
        if self._pos >= len(self._output):
            return None
        row = self._output[self._pos]
        self._pos += 1
        return row

    def _close(self) -> None:
        self._output = []
