"""Sort-merge join.

The third classical join method of the Volcano toolbox (next to nested
loops and hash join): both inputs arrive sorted on the join key and are
merged with duplicate-group buffering, so the operator streams in
O(left + right + output) with memory bounded by the largest duplicate
group on the right.

Inputs are *required* to be key-sorted; the operator verifies this as
it consumes them and raises :class:`PlanError` on out-of-order rows —
silent wrong answers are worse than a failed plan.  Compose with
:class:`~repro.volcano.sort.ExternalSort` when inputs are unsorted.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import PlanError
from repro.volcano.iterator import Row, VolcanoIterator


class MergeJoin(VolcanoIterator):
    """Equi-join of two key-sorted inputs.

    ``combine(left_row, right_row)`` shapes output rows.  Duplicate
    keys on both sides produce the full cross product of the groups,
    matching the other join operators' semantics.
    """

    def __init__(
        self,
        left: VolcanoIterator,
        right: VolcanoIterator,
        left_key: Callable[[Row], object],
        right_key: Callable[[Row], object],
        combine: Callable[[Row, Row], Row] = lambda l, r: (l, r),
    ) -> None:
        super().__init__()
        self._left = left
        self._right = right
        self._left_key = left_key
        self._right_key = right_key
        self._combine = combine
        self._left_row: Optional[Row] = None
        self._left_done = False
        self._right_row: Optional[Row] = None
        self._right_done = False
        self._last_left_key: Optional[object] = None
        self._last_right_key: Optional[object] = None
        # Current duplicate group of the right side, replayed per
        # matching left row.
        self._group_key: Optional[object] = None
        self._group: List[Row] = []
        self._group_pos = 0

    # -- sorted input consumption ---------------------------------------------

    def _advance_left(self) -> None:
        if self._left_done:
            return
        row = self._left.next()
        if row is None:
            self._left_done = True
            self._left_row = None
            return
        key = self._left_key(row)
        if self._last_left_key is not None and key < self._last_left_key:  # type: ignore[operator]
            raise PlanError(
                "merge join: left input is not sorted on the join key"
            )
        self._last_left_key = key
        self._left_row = row

    def _advance_right(self) -> None:
        if self._right_done:
            return
        row = self._right.next()
        if row is None:
            self._right_done = True
            self._right_row = None
            return
        key = self._right_key(row)
        if self._last_right_key is not None and key < self._last_right_key:  # type: ignore[operator]
            raise PlanError(
                "merge join: right input is not sorted on the join key"
            )
        self._last_right_key = key
        self._right_row = row

    def _load_right_group(self, key: object) -> None:
        """Collect every right row with ``key`` into the replay buffer."""
        self._group = []
        self._group_key = key
        while self._right_row is not None and self._right_key(
            self._right_row
        ) == key:
            self._group.append(self._right_row)
            self._advance_right()
        self._group_pos = 0

    # -- protocol ------------------------------------------------------------------

    def _open(self) -> None:
        self._left.open()
        self._right.open()
        self._left_row = None
        self._right_row = None
        self._left_done = False
        self._right_done = False
        self._last_left_key = None
        self._last_right_key = None
        self._group = []
        self._group_key = None
        self._group_pos = 0
        self._advance_left()
        self._advance_right()

    def _next(self) -> Optional[Row]:
        while True:
            if self._left_row is None:
                return None
            left_key = self._left_key(self._left_row)

            # Replay the buffered right group for this left row.
            if self._group_key == left_key:
                if self._group_pos < len(self._group):
                    right_row = self._group[self._group_pos]
                    self._group_pos += 1
                    return self._combine(self._left_row, right_row)
                # Group exhausted: next left row may reuse it.
                self._advance_left()
                self._group_pos = 0
                continue

            # Align the right cursor with the left key.
            while (
                self._right_row is not None
                and self._right_key(self._right_row) < left_key  # type: ignore[operator]
            ):
                self._advance_right()
            if (
                self._right_row is not None
                and self._right_key(self._right_row) == left_key
            ):
                self._load_right_group(left_key)
                continue
            # No partner for this left key.
            self._advance_left()
            self._group_key = None
            self._group = []

    def _close(self) -> None:
        self._left.close()
        self._right.close()
        self._group = []
