"""Row-at-a-time operators: filter, project, limit, distinct, map.

These are the trivial members of Volcano's physical algebra.  They are
deliberately thin: each is a pure iterator transformation that respects
the open/next/close protocol and defers all policy to callables
supplied by the plan builder.
"""

from __future__ import annotations

from typing import Callable, Optional, Set

from repro.errors import PlanError
from repro.volcano.iterator import Row, VolcanoIterator


class Filter(VolcanoIterator):
    """Emit only rows for which ``predicate(row)`` is true."""

    def __init__(
        self, child: VolcanoIterator, predicate: Callable[[Row], bool]
    ) -> None:
        super().__init__()
        self._child = child
        self._predicate = predicate
        #: rows examined / rows passed, for selectivity reporting.
        self.seen = 0
        self.passed = 0

    def _open(self) -> None:
        self._child.open()
        self.seen = 0
        self.passed = 0

    def _next(self) -> Optional[Row]:
        while True:
            row = self._child.next()
            if row is None:
                return None
            self.seen += 1
            if self._predicate(row):
                self.passed += 1
                return row

    def _close(self) -> None:
        self._child.close()

    @property
    def observed_selectivity(self) -> float:
        """Fraction of examined rows that passed (0.0 before any input)."""
        if self.seen == 0:
            return 0.0
        return self.passed / self.seen


class Project(VolcanoIterator):
    """Apply ``transform(row)`` to every row."""

    def __init__(
        self, child: VolcanoIterator, transform: Callable[[Row], Row]
    ) -> None:
        super().__init__()
        self._child = child
        self._transform = transform

    def _open(self) -> None:
        self._child.open()

    def _next(self) -> Optional[Row]:
        row = self._child.next()
        if row is None:
            return None
        return self._transform(row)

    def _close(self) -> None:
        self._child.close()


class Limit(VolcanoIterator):
    """Emit at most ``n`` rows, then report end-of-stream."""

    def __init__(self, child: VolcanoIterator, n: int) -> None:
        super().__init__()
        if n < 0:
            raise PlanError("limit must be non-negative")
        self._child = child
        self._n = n
        self._emitted = 0

    def _open(self) -> None:
        self._child.open()
        self._emitted = 0

    def _next(self) -> Optional[Row]:
        if self._emitted >= self._n:
            return None
        row = self._child.next()
        if row is None:
            return None
        self._emitted += 1
        return row

    def _close(self) -> None:
        self._child.close()


class Distinct(VolcanoIterator):
    """Drop duplicate rows (hash-based; rows must be hashable).

    ``key`` optionally projects the deduplication key out of each row.
    """

    def __init__(
        self,
        child: VolcanoIterator,
        key: Optional[Callable[[Row], object]] = None,
    ) -> None:
        super().__init__()
        self._child = child
        self._key = key
        self._seen: Set[object] = set()

    def _open(self) -> None:
        self._child.open()
        self._seen = set()

    def _next(self) -> Optional[Row]:
        while True:
            row = self._child.next()
            if row is None:
                return None
            key = row if self._key is None else self._key(row)
            if key not in self._seen:
                self._seen.add(key)
                return row

    def _close(self) -> None:
        self._child.close()
        self._seen = set()
