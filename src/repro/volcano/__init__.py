"""Volcano-style query engine: uniform open/next/close iterators.

This package is the "set processor" of the paper's Figure 1 — the
physical-algebra layer the assembly operator plugs into.
"""

from repro.volcano.aggregate import HashAggregate, count_aggregate, sum_aggregate
from repro.volcano.assembly import (
    AssemblyOperator,
    ComponentFilter,
    ParallelAssembly,
)
from repro.volcano.exchange import Partition, PartitionedExecute
from repro.volcano.filters import Distinct, Filter, Limit, Project
from repro.volcano.iterator import (
    GeneratorSource,
    ListSource,
    Row,
    VolcanoIterator,
)
from repro.volcano.joins import (
    HashJoin,
    NestedLoopsJoin,
    OneToOneMatch,
    PointerJoin,
)
from repro.volcano.mergejoin import MergeJoin
from repro.volcano.plan import (
    AssemblyJoinChoice,
    AssemblyJoinPlan,
    PushdownDecision,
    collect_operators,
    explain,
    plan_assembly_join,
    push_down_component_filters,
    replace_child,
    validate_plan,
    walk_plan,
)
from repro.volcano.scan import FileScan, IndexScan, StoreScan, TidScan
from repro.volcano.sort import ExternalSort

__all__ = [
    "AssemblyJoinChoice",
    "AssemblyJoinPlan",
    "AssemblyOperator",
    "ComponentFilter",
    "Distinct",
    "ExternalSort",
    "FileScan",
    "Filter",
    "GeneratorSource",
    "HashAggregate",
    "HashJoin",
    "IndexScan",
    "Limit",
    "ListSource",
    "MergeJoin",
    "NestedLoopsJoin",
    "OneToOneMatch",
    "ParallelAssembly",
    "Partition",
    "PartitionedExecute",
    "PointerJoin",
    "Project",
    "PushdownDecision",
    "Row",
    "StoreScan",
    "TidScan",
    "VolcanoIterator",
    "collect_operators",
    "count_aggregate",
    "explain",
    "plan_assembly_join",
    "push_down_component_filters",
    "replace_child",
    "sum_aggregate",
    "validate_plan",
    "walk_plan",
]
