"""Grouping and aggregation.

A small hash aggregation operator in the Volcano mould: the child is
consumed at ``open``, groups accumulate via an init/step/final triple
(the shape Volcano's aggregation module used), and results stream out
group by group.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.volcano.iterator import Row, VolcanoIterator


class HashAggregate(VolcanoIterator):
    """Group rows by ``group_key`` and fold each group.

    * ``init()`` creates a fresh accumulator,
    * ``step(acc, row)`` returns the updated accumulator,
    * ``final(key, acc)`` shapes the output row.
    """

    def __init__(
        self,
        child: VolcanoIterator,
        group_key: Callable[[Row], object],
        init: Callable[[], object],
        step: Callable[[object, Row], object],
        final: Callable[[object, object], Row] = lambda key, acc: (key, acc),
    ) -> None:
        super().__init__()
        self._child = child
        self._group_key = group_key
        self._init = init
        self._step = step
        self._final = final
        self._results: List[Row] = []
        self._pos = 0

    def _open(self) -> None:
        groups: Dict[object, object] = {}
        self._child.open()
        while True:
            row = self._child.next()
            if row is None:
                break
            key = self._group_key(row)
            if key not in groups:
                groups[key] = self._init()
            groups[key] = self._step(groups[key], row)
        self._child.close()
        self._results = [self._final(k, acc) for k, acc in groups.items()]
        self._pos = 0

    def _next(self) -> Optional[Row]:
        if self._pos >= len(self._results):
            return None
        row = self._results[self._pos]
        self._pos += 1
        return row

    def _close(self) -> None:
        self._results = []


def count_aggregate(
    child: VolcanoIterator, group_key: Callable[[Row], object]
) -> HashAggregate:
    """Convenience: ``(key, count)`` per group."""
    return HashAggregate(
        child,
        group_key,
        init=lambda: 0,
        step=lambda acc, _row: acc + 1,
    )


def sum_aggregate(
    child: VolcanoIterator,
    group_key: Callable[[Row], object],
    value: Callable[[Row], float],
) -> HashAggregate:
    """Convenience: ``(key, sum_of_value)`` per group."""
    return HashAggregate(
        child,
        group_key,
        init=lambda: 0,
        step=lambda acc, row: acc + value(row),
    )
