"""Sharded service fabric: routing, replicas, hedging, shedding.

The §7-and-beyond layer: N independent device-server shards behind a
consistent-hash router, optional read replicas with deterministic
hedged requests, open-loop arrival processes on the event clock, and
SLO-driven load shedding in front of each shard's admission
controller.  See ``docs/fabric.md`` for the model and its exactness
anchor to the single-server path.
"""

from repro.fabric.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from repro.fabric.builder import build_sharded_fabric, open_loop_workload
from repro.fabric.parallel import (
    ShardPartition,
    build_replica_partitions,
    build_shard_partitions,
    partition_fn_for,
)
from repro.fabric.fabric import (
    FabricReport,
    FabricRequest,
    HedgePolicy,
    RequestSpec,
    ServiceFabric,
    Shard,
    ShardReplica,
    SheddingPolicy,
)
from repro.fabric.router import ConsistentHashRouter

__all__ = [
    "ArrivalProcess",
    "ConsistentHashRouter",
    "DiurnalArrivals",
    "FabricReport",
    "FabricRequest",
    "HedgePolicy",
    "MMPPArrivals",
    "PoissonArrivals",
    "RequestSpec",
    "ServiceFabric",
    "Shard",
    "ShardPartition",
    "ShardReplica",
    "SheddingPolicy",
    "build_replica_partitions",
    "build_shard_partitions",
    "build_sharded_fabric",
    "open_loop_workload",
    "partition_fn_for",
]
