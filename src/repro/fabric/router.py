"""Consistent-hash routing of root OIDs onto shards.

The fabric partitions the database by *root* OID: a complex object's
private components always live with their root, so hashing the root is
enough to place (and later find) the whole tree.  OIDs are logical and
assigned at generation time — before layout — which is what makes
pre-layout partitioning possible (``repro.storage.oid`` footnote 1:
physical placement is a separate mapping).

The ring is the classic virtual-node construction: every shard owns
``vnodes`` pseudo-random tokens on a 64-bit circle, and an OID belongs
to the shard owning the first token clockwise of its digest.  Virtual
nodes smooth the per-shard key share, and — the property the tests
pin — growing the ring from N to N+1 shards moves only roughly a
``1/(N+1)`` fraction of keys, instead of rehashing almost everything
the way ``hash(oid) % N`` would.

Hashing is :func:`hashlib.blake2b` over the OID's stable 10-byte
encoding, so placement is deterministic across runs, platforms and
Python versions (never the process-seeded builtin ``hash``).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Sequence, Tuple

from repro.errors import FabricError
from repro.storage.oid import Oid

#: Virtual nodes per shard on the hash ring.
DEFAULT_VNODES = 64


def _digest(data: bytes) -> int:
    """A stable 64-bit hash of ``data``."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


class ConsistentHashRouter:
    """Maps OIDs to one of ``n_shards`` via a virtual-node hash ring."""

    def __init__(
        self,
        n_shards: int,
        vnodes: int = DEFAULT_VNODES,
        salt: bytes = b"repro.fabric",
    ) -> None:
        if n_shards <= 0:
            raise FabricError("n_shards must be positive")
        if vnodes <= 0:
            raise FabricError("vnodes must be positive")
        self.n_shards = n_shards
        self.vnodes = vnodes
        self.salt = salt
        ring: List[Tuple[int, int]] = []
        for shard in range(n_shards):
            for vnode in range(vnodes):
                token = _digest(b"%s:%d:%d" % (salt, shard, vnode))
                ring.append((token, shard))
        ring.sort()
        self._tokens = [token for token, _shard in ring]
        self._owners = [shard for _token, shard in ring]

    def shard_of(self, oid: Oid) -> int:
        """The shard owning ``oid`` (first token clockwise of its hash)."""
        point = _digest(oid.encode())
        index = bisect.bisect_right(self._tokens, point)
        if index == len(self._tokens):
            index = 0  # wrap past the last token
        return self._owners[index]

    def partition(self, oids: Iterable[Oid]) -> List[List[Oid]]:
        """Split ``oids`` into per-shard lists, preserving input order.

        Stability matters: each shard lays its partition out in this
        order, so the single-shard partition is exactly the input list
        and layout is bit-identical to the unsharded path.
        """
        parts: List[List[Oid]] = [[] for _ in range(self.n_shards)]
        for oid in oids:
            parts[self.shard_of(oid)].append(oid)
        return parts

    def shares(self, oids: Sequence[Oid]) -> List[float]:
        """Fraction of ``oids`` each shard owns (balance diagnostics)."""
        if not oids:
            return [0.0] * self.n_shards
        parts = self.partition(oids)
        return [len(part) / len(oids) for part in parts]

    def __repr__(self) -> str:
        return (
            f"ConsistentHashRouter(shards={self.n_shards}, "
            f"vnodes={self.vnodes})"
        )
