"""Shard-local partition stores for exchange-parallel assembly.

The §7 plan shape needs one independent store per partition.  Two
builders cover the two deployment shapes the volcano layer supports:

* :func:`build_shard_partitions` — the fabric shape: complex objects
  are dealt to shards by consistent-hashing their root OIDs (the same
  :class:`~repro.fabric.router.ConsistentHashRouter` deal
  :func:`~repro.fabric.builder.build_sharded_fabric` uses), and each
  shard lays out only its own partition on its own disk.  The shared
  pool is replicated to every shard — cross-shard fetches do not
  exist in this model.
* :func:`build_replica_partitions` — the local multi-disk shape: one
  layout is snapshotted and restored, bit-identically, onto ``n``
  fresh disks; any root can then be assembled on any partition, so
  round-robin dealing balances perfectly.

Both default to :class:`~repro.storage.costmodel.CostedDisk` backing
so :meth:`~repro.volcano.assembly.ParallelAssembly.elapsed_ms` can
price the run on the event clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.cluster.layout import (
    LayoutResult,
    layout_database,
    restore_layout,
    snapshot_layout,
)
from repro.errors import FabricError
from repro.fabric.builder import _make_policy
from repro.fabric.router import ConsistentHashRouter
from repro.storage.buffer import BufferManager
from repro.storage.costmodel import CostedDisk, CostModel
from repro.storage.disk import SimulatedDisk
from repro.storage.oid import Oid
from repro.storage.store import ObjectStore
from repro.workloads.acob import ACOBDatabase


@dataclass
class ShardPartition:
    """One partition of an exchange-parallel assembly plan."""

    index: int
    store: ObjectStore
    layout: LayoutResult

    @property
    def roots(self) -> List[Oid]:
        """This partition's root OIDs, in the layout's input order."""
        return self.layout.root_order


def _fresh_store(
    costed: bool, cost_model: Optional[CostModel]
) -> ObjectStore:
    if costed:
        disk = CostedDisk(cost_model if cost_model is not None else CostModel())
    else:
        disk = SimulatedDisk()
    return ObjectStore(disk, BufferManager(disk))


def build_shard_partitions(
    database: ACOBDatabase,
    n_shards: int,
    *,
    clustering: str = "inter-object",
    cluster_pages: int = 512,
    layout_seed: int = 0,
    vnodes: int = 64,
    costed: bool = True,
    cost_model: Optional[CostModel] = None,
) -> Tuple[List[ShardPartition], ConsistentHashRouter]:
    """Deal ``database`` across ``n_shards`` shard-local stores.

    Returns the partitions and the router that dealt them; feed
    ``partition_fn_for(router)`` to
    :class:`~repro.volcano.assembly.ParallelAssembly` so each root is
    assembled on the shard that holds it.
    """
    if n_shards <= 0:
        raise FabricError("n_shards must be positive")
    router = ConsistentHashRouter(n_shards, vnodes=vnodes)
    dealt: List[List] = [[] for _ in range(n_shards)]
    for cobj in database.complex_objects:
        dealt[router.shard_of(cobj.root)].append(cobj)
    partitions: List[ShardPartition] = []
    for shard_id, partition_objects in enumerate(dealt):
        store = _fresh_store(costed, cost_model)
        layout = layout_database(
            partition_objects,
            store,
            _make_policy(clustering, cluster_pages, database),
            shared=database.shared_pool,
            seed=layout_seed,
            validate=False,
        )
        partitions.append(
            ShardPartition(index=shard_id, store=store, layout=layout)
        )
    return partitions, router


def partition_fn_for(
    router: ConsistentHashRouter,
) -> Callable[[Oid, int], int]:
    """A ``ParallelAssembly`` partition function routing by shard owner."""
    return lambda row, position: router.shard_of(row)


def build_replica_partitions(
    layout: LayoutResult,
    n_partitions: int,
    *,
    costed: bool = True,
    cost_model: Optional[CostModel] = None,
) -> List[ShardPartition]:
    """Replicate one laid-out database onto ``n_partitions`` fresh disks.

    Every replica restores the same snapshot, so the page images are
    bit-identical and a positional round-robin deal (ParallelAssembly's
    default) keeps the partitions balanced.
    """
    if n_partitions <= 0:
        raise FabricError("n_partitions must be positive")
    snapshot = snapshot_layout(layout)
    partitions: List[ShardPartition] = []
    for index in range(n_partitions):
        store = _fresh_store(costed, cost_model)
        restored = restore_layout(snapshot, store)
        partitions.append(
            ShardPartition(index=index, store=store, layout=restored)
        )
    return partitions
