"""Building a sharded fabric from one generated database.

Partitioning happens *before* layout: complex objects are dealt to
shards by consistent-hashing their root OIDs, then each shard lays its
partition out on its own fresh disk with its own clustering policy
instance.  Every replica of a shard repeats the same layout with the
same seed, so replicas are bit-identical copies — which is what makes
hedged duplicates answerable by any of them.

The shared pool (Section 5's shared components) is replicated to every
shard: shared objects may be referenced from complex objects on
different shards, and cross-shard fetches do not exist in this model.

With ``n_shards=1, replicas_per_shard=1`` the single partition is the
database in its original order and the single store is laid out
exactly as the unsharded path lays it out — the anchor the exactness
property tests lean on.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cluster.layout import layout_database
from repro.cluster.policies import (
    ClusteringPolicy,
    InterObjectClustering,
    IntraObjectClustering,
    Unclustered,
)
from repro.errors import FabricError
from repro.fabric.arrivals import ArrivalProcess
from repro.fabric.fabric import (
    HedgePolicy,
    RequestSpec,
    ServiceFabric,
    Shard,
    ShardReplica,
    SheddingPolicy,
)
from repro.fabric.router import ConsistentHashRouter
from repro.service.server import AssemblyService
from repro.storage.buffer import BufferManager
from repro.storage.costmodel import CostModel
from repro.storage.disk import SimulatedDisk
from repro.storage.store import ObjectStore
from repro.workloads.acob import ACOBDatabase, make_template


def _make_policy(
    clustering: str, cluster_pages: int, database: ACOBDatabase
) -> ClusteringPolicy:
    """A fresh policy instance (policies may keep per-layout state)."""
    if clustering == "inter-object":
        return InterObjectClustering(
            cluster_pages=cluster_pages,
            disk_order=database.type_ids_depth_first(),
        )
    if clustering == "intra-object":
        return IntraObjectClustering()
    if clustering == "unclustered":
        return Unclustered()
    raise FabricError(f"unknown clustering {clustering!r}")


def build_sharded_fabric(
    database: ACOBDatabase,
    n_shards: int = 1,
    replicas_per_shard: int = 1,
    *,
    clustering: str = "inter-object",
    cluster_pages: int = 512,
    buffer_capacity: Optional[int] = None,
    cache_capacity: int = 256,
    starvation_bound: Optional[int] = 64,
    max_waiting: int = 16,
    min_window: int = 1,
    batch_pages: int = 1,
    layout_seed: int = 0,
    vnodes: int = 64,
    cost_model: Optional[CostModel] = None,
    hedging: Optional[HedgePolicy] = None,
    shedding: Optional[SheddingPolicy] = None,
    placement: str = "shortest-queue",
    speed_factors: Optional[Dict[Tuple[int, int], float]] = None,
    span_recorder=None,
) -> ServiceFabric:
    """Partition ``database`` across shards and stand the fabric up.

    ``speed_factors`` maps ``(shard_id, replica_id)`` to a clock
    multiplier (> 1 = slower hardware) for heterogeneous-fleet
    experiments; unlisted replicas run at 1.0.
    """
    if replicas_per_shard <= 0:
        raise FabricError("replicas_per_shard must be positive")
    cost_model = cost_model if cost_model is not None else CostModel()
    router = ConsistentHashRouter(n_shards, vnodes=vnodes)
    partitions: List[List] = [[] for _ in range(n_shards)]
    for cobj in database.complex_objects:
        partitions[router.shard_of(cobj.root)].append(cobj)
    shards: List[Shard] = []
    for shard_id, partition in enumerate(partitions):
        replicas: List[ShardReplica] = []
        roots = []
        for replica_id in range(replicas_per_shard):
            disk = SimulatedDisk()
            buffer = BufferManager(disk, capacity=buffer_capacity)
            store = ObjectStore(disk, buffer)
            layout = layout_database(
                partition,
                store,
                _make_policy(clustering, cluster_pages, database),
                shared=database.shared_pool,
                seed=layout_seed,
                validate=False,
            )
            service = AssemblyService(
                store,
                cache_capacity=cache_capacity,
                starvation_bound=starvation_bound,
                max_waiting=max_waiting,
                min_window=min_window,
                batch_pages=batch_pages,
            )
            factor = (speed_factors or {}).get((shard_id, replica_id), 1.0)
            replicas.append(
                ShardReplica(
                    shard_id,
                    replica_id,
                    store,
                    service,
                    cost_model=cost_model,
                    speed_factor=factor,
                )
            )
            roots = list(layout.root_order)  # identical across replicas
        shards.append(
            Shard(
                shard_id,
                replicas,
                roots,
                slo=None if shedding is None else shedding.make_tracker(),
                placement=placement,
                shed_priority=(
                    shedding.shed_priority if shedding is not None else False
                ),
            )
        )
    return ServiceFabric(
        shards,
        router,
        make_template(database),
        cost_model=cost_model,
        hedging=hedging,
        span_recorder=span_recorder,
    )


def open_loop_workload(
    fabric: ServiceFabric,
    arrivals: Union[ArrivalProcess, Sequence[float]],
    n_requests: Optional[int] = None,
    *,
    roots_per_request: Union[int, Tuple[int, int]] = 2,
    window_size: int = 8,
    seed: int = 0,
    use_cache: bool = True,
) -> List[RequestSpec]:
    """Pair arrival times with shard-local root picks.

    Each request draws one shard (weighted by root population — busy
    shards see proportionally more traffic) and takes its roots from a
    seeded per-shard permutation, advancing a cursor so consecutive
    requests hit *different* roots (no accidental result-cache storm).
    All roots of one request come from one shard, matching the
    router's one-request-one-shard contract.

    ``roots_per_request`` may be an int or an inclusive ``(lo, hi)``
    range for heterogeneous request sizes (the tail-latency regime).
    """
    if isinstance(arrivals, ArrivalProcess):
        if n_requests is None:
            raise FabricError(
                "n_requests is required with an ArrivalProcess"
            )
        times = arrivals.times(n_requests)
    else:
        times = list(arrivals)
        if n_requests is not None and n_requests != len(times):
            raise FabricError(
                "n_requests disagrees with the explicit arrival list"
            )
    rng = random.Random(seed)
    populated = [s for s in fabric.shards if s.roots]
    if not populated:
        raise FabricError("no shard has any roots to request")
    weights = [len(s.roots) for s in populated]
    orders = {
        s.shard_id: rng.sample(s.roots, len(s.roots)) for s in populated
    }
    cursors = {s.shard_id: 0 for s in populated}
    specs: List[RequestSpec] = []
    for when in times:
        shard = rng.choices(populated, weights=weights)[0]
        if isinstance(roots_per_request, tuple):
            count = rng.randint(*roots_per_request)
        else:
            count = roots_per_request
        count = max(1, min(count, len(shard.roots)))
        order = orders[shard.shard_id]
        cursor = cursors[shard.shard_id]
        picked = []
        for _ in range(count):
            picked.append(order[cursor])
            cursor = (cursor + 1) % len(order)
        cursors[shard.shard_id] = cursor
        specs.append(
            RequestSpec(
                roots=tuple(picked),
                arrival_ms=when,
                window_size=window_size,
                use_cache=use_cache,
            )
        )
    return specs
