"""Open-loop arrival processes on the event clock.

The S-1..S-4 service figures drive the server *closed-loop*: each
simulated client waits for its previous request before issuing the
next, so the offered load self-throttles exactly when the server
saturates — the regime where knees and tail blowups live is
unreachable by construction.  These generators produce *open-loop*
traffic instead: arrival timestamps drawn independently of service
progress, as Darmont & Gruenwald's simulation methodology (PAPERS.md)
prescribes for clustering comparisons whose conclusions flip with the
arrival pattern.

Three processes, all seeded and deterministic (``random.Random`` is a
fixed algorithm across platforms):

* :class:`PoissonArrivals` — memoryless traffic at a constant rate.
* :class:`MMPPArrivals` — a two-state Markov-modulated Poisson
  process: quiet periods punctuated by bursts, the standard bursty
  traffic model.
* :class:`DiurnalArrivals` — a sinusoidal rate curve (day/night
  load), realized by Lewis–Shedler thinning of a dominating Poisson
  process.

Timestamps are absolute simulated milliseconds; rates are requests
per second (the natural unit for offered load).  ``times(n)`` always
restarts from the seed, so the same process object can parameterize
many runs without order-of-use effects.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, List

from repro.errors import FabricError


class ArrivalProcess:
    """Base class: a seeded generator of absolute arrival times (ms)."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def _generate(self, rng: random.Random) -> Iterator[float]:
        raise NotImplementedError

    def times(self, n: int) -> List[float]:
        """The first ``n`` arrival timestamps, in milliseconds."""
        if n < 0:
            raise FabricError("cannot generate a negative arrival count")
        rng = random.Random(self.seed)
        stream = self._generate(rng)
        return [next(stream) for _ in range(n)]


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at ``rate_per_s`` requests per second."""

    def __init__(self, rate_per_s: float, seed: int = 0) -> None:
        super().__init__(seed)
        if rate_per_s <= 0:
            raise FabricError("arrival rate must be positive")
        self.rate_per_s = rate_per_s

    def _generate(self, rng: random.Random) -> Iterator[float]:
        now = 0.0
        while True:
            now += rng.expovariate(self.rate_per_s) * 1000.0
            yield now


class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (bursty traffic).

    The process alternates between a *quiet* state emitting at
    ``quiet_rate_per_s`` and a *burst* state emitting at
    ``burst_rate_per_s``; state dwell times are exponential with the
    given means.  Because the exponential is memoryless, an arrival
    gap that crosses the next state switch can simply be redrawn from
    the new state's rate at the switch point — the textbook MMPP
    simulation.
    """

    def __init__(
        self,
        quiet_rate_per_s: float,
        burst_rate_per_s: float,
        mean_quiet_s: float = 2.0,
        mean_burst_s: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        for name, value in (
            ("quiet_rate_per_s", quiet_rate_per_s),
            ("burst_rate_per_s", burst_rate_per_s),
            ("mean_quiet_s", mean_quiet_s),
            ("mean_burst_s", mean_burst_s),
        ):
            if value <= 0:
                raise FabricError(f"{name} must be positive")
        self.quiet_rate_per_s = quiet_rate_per_s
        self.burst_rate_per_s = burst_rate_per_s
        self.mean_quiet_s = mean_quiet_s
        self.mean_burst_s = mean_burst_s

    def _generate(self, rng: random.Random) -> Iterator[float]:
        now = 0.0
        bursting = False
        switch = now + rng.expovariate(1.0 / self.mean_quiet_s) * 1000.0
        while True:
            rate = (
                self.burst_rate_per_s if bursting else self.quiet_rate_per_s
            )
            candidate = now + rng.expovariate(rate) * 1000.0
            if candidate < switch:
                now = candidate
                yield now
            else:
                now = switch
                bursting = not bursting
                dwell = (
                    self.mean_burst_s if bursting else self.mean_quiet_s
                )
                switch = now + rng.expovariate(1.0 / dwell) * 1000.0


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal rate curve: ``base * (1 + amplitude*sin(2πt/period))``.

    Realized by thinning: candidates arrive at the peak rate and are
    kept with probability ``rate(t)/peak`` — the Lewis–Shedler method
    for non-homogeneous Poisson processes.  ``amplitude`` must stay
    below 1 so the rate never touches zero (a zero-rate trough would
    let ``times(n)`` spin unboundedly).
    """

    def __init__(
        self,
        base_rate_per_s: float,
        amplitude: float = 0.8,
        period_s: float = 60.0,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        if base_rate_per_s <= 0:
            raise FabricError("base_rate_per_s must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise FabricError("amplitude must be in [0, 1)")
        if period_s <= 0:
            raise FabricError("period_s must be positive")
        self.base_rate_per_s = base_rate_per_s
        self.amplitude = amplitude
        self.period_s = period_s

    def rate_at(self, t_ms: float) -> float:
        """The instantaneous rate (requests/s) at simulated time ``t_ms``."""
        phase = 2.0 * math.pi * (t_ms / 1000.0) / self.period_s
        return self.base_rate_per_s * (
            1.0 + self.amplitude * math.sin(phase)
        )

    def _generate(self, rng: random.Random) -> Iterator[float]:
        peak = self.base_rate_per_s * (1.0 + self.amplitude)
        now = 0.0
        while True:
            now += rng.expovariate(peak) * 1000.0
            if rng.random() <= self.rate_at(now) / peak:
                yield now
