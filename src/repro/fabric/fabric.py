"""The sharded service fabric: replicas, hedging, load shedding.

One :class:`~repro.service.server.AssemblyService` is a single device
server — the paper's §7 sketch stops there.  The fabric is the
million-user story on top: N independent *shards* (each with its own
disks, buffer pool, result cache, admission controller and metrics),
each shard served by one or more *replicas* holding identical copies
of the shard's partition, fed by open-loop traffic from
:mod:`repro.fabric.arrivals` through a consistent-hash
:class:`~repro.fabric.router.ConsistentHashRouter`.

Time model
----------
Every replica owns a millisecond clock advanced by the cost-model
price of the physical reads its service performs (captured through
the disk's additive I/O observer, plus any fault-injected delay).
The fabric multiplexes replicas the way the event engine multiplexes
devices: it always steps the busy replica with the *smallest* clock,
and delivers due events (arrivals, hedge timers) from a
:class:`~repro.storage.events.EventQueue` whenever no busy replica
lags behind the event.  Idle replicas jump forward to the arrival
they receive.  Elapsed time is therefore ``max`` over replica
timelines, never ``sum`` — and the whole schedule is deterministic:
same specs, same seeds, bit-identical results, clocks and metrics.

Exactness anchor (property-tested): with one shard, one replica,
hedging off and every arrival at t=0, the fabric degenerates to
"submit everything in order, then run" — byte-identical results, disk
statistics and service-metrics snapshots to driving the underlying
:class:`AssemblyService` directly.

Hedging
-------
With replicas > 1 and a :class:`HedgePolicy`, each request schedules
a hedge timer at ``arrival + delay`` where the delay is priced from
the cost model (a multiple of the request's expected service time).
If the primary has not finished by then, a duplicate is issued to the
replica with the shortest queue among the others; whichever copy
finishes first wins and the loser is cancelled on the event clock
(its pending references retracted, its admission budget released).

Load shedding
-------------
With a :class:`SheddingPolicy`, each shard tracks its recent latency
tail in an :class:`~repro.obs.slo.SLOTracker`; while the windowed
p99 breaches the declared SLO, new arrivals are dropped at the door
instead of joining the admission queue — bounding the backlog the
existing admission controller would otherwise accumulate.  Admission
rejections (wait queue full) count as sheds too: either way the
fabric turned a request away under overload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.template import Template
from repro.errors import FabricError, ServiceOverloadError
from repro.fabric.router import ConsistentHashRouter
from repro.obs.slo import SLOTracker
from repro.service.metrics import ServiceMetrics
from repro.service.server import AssemblyService, RequestStatus
from repro.storage.costmodel import CostModel
from repro.storage.events import EventQueue
from repro.storage.oid import Oid
from repro.storage.store import ObjectStore


@dataclass(frozen=True)
class RequestSpec:
    """One open-loop request: what to assemble and when it arrives."""

    roots: Tuple[Oid, ...]
    arrival_ms: float = 0.0
    window_size: int = 8
    priority: bool = False
    use_cache: bool = True

    def __post_init__(self) -> None:
        if not self.roots:
            raise FabricError("a request needs at least one root")
        if self.arrival_ms < 0:
            raise FabricError("arrivals cannot precede time zero")


@dataclass(frozen=True)
class HedgePolicy:
    """When and how to issue a hedged duplicate.

    The hedge delay is priced from the fabric's cost model, not
    guessed in wall-clock units: a request for R roots is expected to
    cost about ``R * reads_per_object`` positioned reads of
    ``seek_hint_pages`` each, and the duplicate fires after
    ``multiplier`` times that — i.e. only once the primary is running
    conspicuously late, which is what keeps hedge overhead bounded.
    """

    multiplier: float = 1.5
    #: expected fetches per complex object (7 for the ACOB template).
    reads_per_object: int = 7
    #: typical positioning distance (pages) for one clustered read.
    seek_hint_pages: int = 8

    def __post_init__(self) -> None:
        if self.multiplier <= 0:
            raise FabricError("hedge multiplier must be positive")
        if self.reads_per_object <= 0 or self.seek_hint_pages < 0:
            raise FabricError("hedge pricing parameters must be positive")

    def delay_ms(self, n_roots: int, cost_model: CostModel) -> float:
        """Milliseconds after arrival before the duplicate is issued."""
        per_read = cost_model.run_service_time(self.seek_hint_pages, 1)
        return self.multiplier * n_roots * self.reads_per_object * per_read


@dataclass(frozen=True)
class SheddingPolicy:
    """Declared latency SLO and the tracker parameters enforcing it."""

    target_ms: float
    percentile: float = 0.99
    window: int = 64
    recover_ratio: float = 0.8
    min_samples: int = 8
    #: shed priority-lane requests too?  Off by default: priority
    #: traffic rides the admission controller's priority lane instead.
    shed_priority: bool = False

    def make_tracker(self) -> SLOTracker:
        """A fresh per-shard tracker configured for this policy."""
        return SLOTracker(
            target_ms=self.target_ms,
            percentile=self.percentile,
            window=self.window,
            recover_ratio=self.recover_ratio,
            min_samples=self.min_samples,
        )


class ShardReplica:
    """One replica: a full service stack plus its private clock.

    The replica prices every physical read its service performs
    through the disk's additive I/O observer and advances ``clock``
    by the sum (times ``speed_factor`` — heterogeneous replica
    hardware), plus any fault-injected delay.  Observation is
    additive, so attaching it never changes the service's behavior.

    ``submit_kwargs`` are applied to every ``service.submit`` on this
    replica (e.g. a per-replica ``retry_policy`` / ``on_fault`` mode
    when its disk carries a fault injector).
    """

    def __init__(
        self,
        shard_id: int,
        replica_id: int,
        store: ObjectStore,
        service: AssemblyService,
        cost_model: Optional[CostModel] = None,
        speed_factor: float = 1.0,
        submit_kwargs: Optional[Dict[str, Any]] = None,
    ) -> None:
        if speed_factor <= 0:
            raise FabricError("speed_factor must be positive")
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.store = store
        self.service = service
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.speed_factor = speed_factor
        self.submit_kwargs = dict(submit_kwargs or {})
        self.clock = 0.0
        self._accumulated_ms = 0.0
        #: service request id -> in-flight fabric request.
        self.outstanding: Dict[int, "FabricRequest"] = {}
        store.disk.add_io_observer(self._price_read)

    def _price_read(self, start: int, distance: int, n_pages: int) -> None:
        self._accumulated_ms += self.cost_model.run_service_time(
            distance, n_pages
        )

    @property
    def depth(self) -> int:
        """Fabric requests outstanding here (queued or running)."""
        return len(self.outstanding)

    def advance_to(self, when: float) -> None:
        """Idle-jump the clock forward (never backward)."""
        if when > self.clock:
            self.clock = when

    def _charge(self, action: Callable[[], Any]) -> Any:
        """Run ``action`` and bill its priced I/O to the clock."""
        injector = getattr(self.store.disk, "fault_injector", None)
        injected_before = (
            injector.injected_ms_total if injector is not None else 0.0
        )
        before = self._accumulated_ms
        try:
            return action()
        finally:
            delta = self._accumulated_ms - before
            if injector is not None:
                delta += injector.injected_ms_total - injected_before
            if delta:
                self.clock += delta * self.speed_factor

    def submit(self, spec: RequestSpec, template: Template) -> int:
        """Submit one spec to this replica's service; its request id."""
        return self._charge(
            lambda: self.service.submit(
                list(spec.roots),
                template,
                window_size=spec.window_size,
                priority=spec.priority,
                use_cache=spec.use_cache,
                **self.submit_kwargs,
            )
        )

    def step(self) -> bool:
        """One service step, billed to the replica clock."""
        return self._charge(self.service.step)

    def __repr__(self) -> str:
        return (
            f"ShardReplica({self.shard_id}.{self.replica_id}, "
            f"clock={self.clock:.1f}ms, depth={self.depth})"
        )


class Shard:
    """One shard: its replicas, roots, SLO tracker and metrics.

    ``metrics`` is a fabric-level :class:`ServiceMetrics` on the
    *millisecond* clock: ``requests_submitted`` counts arrivals routed
    here, ``latency_hist`` holds end-to-end latencies of served
    requests, and the shed/hedge counters live here.  The replicas'
    own tick-domain service metrics stay untouched underneath (and
    bit-identical to an unsharded run — the exactness property).
    """

    def __init__(
        self,
        shard_id: int,
        replicas: List[ShardReplica],
        roots: List[Oid],
        slo: Optional[SLOTracker] = None,
        placement: str = "shortest-queue",
        shed_priority: bool = False,
    ) -> None:
        if not replicas:
            raise FabricError(f"shard {shard_id} has no replicas")
        if placement not in ("shortest-queue", "round-robin"):
            raise FabricError(
                f"unknown placement {placement!r} "
                "(want 'shortest-queue' or 'round-robin')"
            )
        self.shard_id = shard_id
        self.replicas = replicas
        self.roots = roots
        self.slo = slo
        self.placement = placement
        self.shed_priority = shed_priority
        self.metrics = ServiceMetrics()
        self._round_robin = 0

    def pick_primary(self) -> ShardReplica:
        """Placement: where a fresh arrival goes."""
        if self.placement == "round-robin":
            replica = self.replicas[self._round_robin % len(self.replicas)]
            self._round_robin += 1
            return replica
        return min(
            self.replicas, key=lambda r: (r.depth, r.replica_id)
        )

    def pick_hedge_target(
        self, primary: ShardReplica
    ) -> Optional[ShardReplica]:
        """Shortest-queue replica other than the primary, if any."""
        others = [r for r in self.replicas if r is not primary]
        if not others:
            return None
        return min(others, key=lambda r: (r.depth, r.replica_id))

    def snapshot(self) -> Dict[str, object]:
        """Per-shard observability view (metrics + SLO state)."""
        view: Dict[str, object] = {"shard": self.shard_id}
        view.update(self.metrics.snapshot())
        view["slo"] = None if self.slo is None else self.slo.snapshot()
        view["replica_depths"] = [r.depth for r in self.replicas]
        view["replica_clocks"] = [r.clock for r in self.replicas]
        return view


class FabricRequest:
    """Fabric-side state of one open-loop request."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    SHED = "shed"

    def __init__(self, index: int, spec: RequestSpec) -> None:
        self.index = index
        self.spec = spec
        self.shard_id = -1
        self.status = self.PENDING
        #: (replica, service request id) per issued copy; primary first.
        self.attempts: List[Tuple[ShardReplica, int]] = []
        self.hedge_handle: Optional[int] = None
        self.hedged = False
        self.won_by_hedge = False
        self.shed_reason: Optional[str] = None
        self.complete_ms: Optional[float] = None
        self.results: List[Any] = []

    @property
    def latency_ms(self) -> Optional[float]:
        """Arrival-to-completion time; None until the request is done."""
        if self.complete_ms is None:
            return None
        return self.complete_ms - self.spec.arrival_ms


@dataclass
class FabricReport:
    """Everything one open-loop run produced."""

    requests: List[FabricRequest]
    #: merged shard-level metrics (ms domain): the fleet roll-up.
    fleet: ServiceMetrics
    #: merged replica service metrics (tick domain): device detail.
    replicas: ServiceMetrics
    per_shard: List[Dict[str, object]] = field(default_factory=list)
    elapsed_ms: float = 0.0

    @property
    def served(self) -> List[FabricRequest]:
        """Requests that completed, in arrival order."""
        return [r for r in self.requests if r.status == FabricRequest.DONE]

    @property
    def shed(self) -> List[FabricRequest]:
        """Requests turned away (SLO or overload), in arrival order."""
        return [r for r in self.requests if r.status == FabricRequest.SHED]

    def latencies_ms(self) -> List[float]:
        """Served-request latencies, ascending."""
        return sorted(r.latency_ms for r in self.served)

    def percentile_latency_ms(self, fraction: float) -> Optional[float]:
        """Exact served-latency percentile over the whole run."""
        ordered = self.latencies_ms()
        if not ordered:
            return None
        if not 0.0 < fraction <= 1.0:
            raise FabricError("fraction must be in (0, 1]")
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    @property
    def shed_fraction(self) -> float:
        """Requests turned away / requests offered."""
        if not self.requests:
            return 0.0
        return len(self.shed) / len(self.requests)


class ServiceFabric:
    """Routes open-loop traffic across shards; runs it to completion."""

    def __init__(
        self,
        shards: List[Shard],
        router: ConsistentHashRouter,
        template: Template,
        cost_model: Optional[CostModel] = None,
        hedging: Optional[HedgePolicy] = None,
        span_recorder: Optional[Any] = None,
    ) -> None:
        if router.n_shards != len(shards):
            raise FabricError(
                f"router spans {router.n_shards} shards but "
                f"{len(shards)} were built"
            )
        self.shards = shards
        self.router = router
        self.template = template.finalize()
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.hedging = hedging
        self.spans = span_recorder
        self._now = 0.0
        self._events: Optional[EventQueue] = None
        if span_recorder is not None:
            span_recorder.bind_clock(lambda: self._now)

    # -- the run loop --------------------------------------------------------

    def run(self, specs: Iterable[RequestSpec]) -> FabricReport:
        """Deliver every spec at its arrival time; run until drained."""
        events = EventQueue()
        self._events = events
        requests = [
            FabricRequest(index, spec)
            for index, spec in enumerate(specs)
        ]
        for request in requests:
            events.schedule(request.spec.arrival_ms, ("arrival", request))
        while True:
            next_event = events.next_time()
            busy = [
                replica
                for shard in self.shards
                for replica in shard.replicas
                if replica.outstanding
            ]
            if busy:
                replica = min(
                    busy,
                    key=lambda r: (r.clock, r.shard_id, r.replica_id),
                )
                if next_event is None or replica.clock < next_event:
                    self._step_replica(replica)
                    continue
            if next_event is None:
                break
            when, (kind, payload) = events.pop()
            self._now = max(self._now, when)
            if kind == "arrival":
                self._arrive(when, payload)
            else:
                self._fire_hedge(when, payload)
        self._events = None
        unfinished = [
            r.index
            for r in requests
            if r.status not in (FabricRequest.DONE, FabricRequest.SHED)
        ]
        if unfinished:
            raise FabricError(
                f"fabric drained with unfinished requests {unfinished}"
            )
        return self._report(requests)

    def _step_replica(self, replica: ShardReplica) -> None:
        advanced = replica.step()
        for request_id in list(replica.outstanding):
            if request_id not in replica.outstanding:
                continue  # cancelled as a hedge loser this sweep
            status = replica.service.poll(request_id)
            if status is RequestStatus.DONE:
                self._complete(
                    replica.outstanding[request_id], replica, request_id
                )
        if not advanced and replica.outstanding:
            raise FabricError(
                f"replica {replica.shard_id}.{replica.replica_id} idle "
                f"with {replica.depth} request(s) outstanding"
            )

    # -- event handlers ------------------------------------------------------

    def _arrive(self, when: float, request: FabricRequest) -> None:
        spec = request.spec
        shard_id = self.router.shard_of(spec.roots[0])
        for root in spec.roots[1:]:
            if self.router.shard_of(root) != shard_id:
                raise FabricError(
                    f"request {request.index} spans shards: {root} is not "
                    f"on shard {shard_id} (one request, one shard)"
                )
        shard = self.shards[shard_id]
        request.shard_id = shard_id
        shard.metrics.requests_submitted += 1
        sheddable = not spec.priority or shard.shed_priority
        # Door shedding bounds the *backlog*: a breached tracker with an
        # idle shard means the overload already drained, and admitting
        # is also what feeds the tracker the fast completions it needs
        # to recover — shedding an idle shard would latch the breach
        # forever (no completions, no new observations).
        backlogged = any(r.outstanding for r in shard.replicas)
        if (
            shard.slo is not None
            and shard.slo.breached
            and sheddable
            and backlogged
        ):
            self._shed(shard, request, when, reason="slo")
            return
        primary = shard.pick_primary()
        if not primary.outstanding:
            primary.advance_to(when)
        try:
            request_id = primary.submit(spec, self.template)
        except ServiceOverloadError:
            self._shed(shard, request, when, reason="overload")
            return
        request.status = FabricRequest.RUNNING
        request.attempts.append((primary, request_id))
        primary.outstanding[request_id] = request
        if primary.service.poll(request_id) is RequestStatus.DONE:
            # Served entirely from the result cache: done on arrival.
            self._complete(request, primary, request_id, at=when)
            return
        if self.hedging is not None and len(shard.replicas) > 1:
            delay = self.hedging.delay_ms(
                len(spec.roots), self.cost_model
            )
            assert self._events is not None
            request.hedge_handle = self._events.schedule(
                when + delay, ("hedge", request)
            )

    def _shed(
        self, shard: Shard, request: FabricRequest, when: float, reason: str
    ) -> None:
        request.status = FabricRequest.SHED
        request.shed_reason = reason
        shard.metrics.requests_shed += 1
        if self.spans is not None:
            self.spans.add(
                "fabric-shed",
                start=when,
                end=when,
                kind="fabric-shed",
                shard=shard.shard_id,
                request=request.index,
                reason=reason,
            )

    def _fire_hedge(self, when: float, request: FabricRequest) -> None:
        request.hedge_handle = None
        if request.status is not FabricRequest.RUNNING:
            return
        shard = self.shards[request.shard_id]
        primary, _primary_id = request.attempts[0]
        target = shard.pick_hedge_target(primary)
        if target is None:
            return
        if not target.outstanding:
            target.advance_to(when)
        try:
            duplicate_id = target.submit(request.spec, self.template)
        except ServiceOverloadError:
            return  # nowhere to hedge to; the primary keeps running
        request.hedged = True
        request.attempts.append((target, duplicate_id))
        target.outstanding[duplicate_id] = request
        shard.metrics.hedge_fired += 1
        if self.spans is not None:
            self.spans.add(
                "fabric-hedge",
                start=when,
                end=when,
                kind="fabric-hedge",
                shard=shard.shard_id,
                request=request.index,
                replica=target.replica_id,
            )
        if target.service.poll(duplicate_id) is RequestStatus.DONE:
            self._complete(request, target, duplicate_id, at=when)

    # -- completion ----------------------------------------------------------

    def _complete(
        self,
        request: FabricRequest,
        winner: ShardReplica,
        winner_id: int,
        at: Optional[float] = None,
    ) -> None:
        complete_ms = winner.clock if at is None else at
        shard = self.shards[request.shard_id]
        request.results = winner.service.result(winner_id)
        del winner.outstanding[winner_id]
        request.status = FabricRequest.DONE
        request.complete_ms = complete_ms
        request.won_by_hedge = (
            request.hedged and (winner, winner_id) == request.attempts[-1]
        )
        if request.hedge_handle is not None:
            assert self._events is not None
            self._events.cancel(request.hedge_handle)
            request.hedge_handle = None
        for loser, loser_id in request.attempts:
            if loser is winner and loser_id == winner_id:
                continue
            if loser_id in loser.outstanding:
                loser.service.cancel(loser_id)
                del loser.outstanding[loser_id]
        latency = request.latency_ms
        assert latency is not None
        shard.metrics.requests_completed += 1
        shard.metrics.latency_hist.record(latency)
        if request.won_by_hedge:
            shard.metrics.hedge_won += 1
        if shard.slo is not None:
            shard.slo.observe(latency)
        self._now = max(self._now, complete_ms)
        if self.spans is not None:
            self.spans.add(
                "fabric-request",
                start=request.spec.arrival_ms,
                end=complete_ms,
                kind="fabric-request",
                shard=request.shard_id,
                request=request.index,
                hedged=request.hedged,
                won_by_hedge=request.won_by_hedge,
            )

    # -- readout -------------------------------------------------------------

    @property
    def elapsed_ms(self) -> float:
        """Fleet wall time: the furthest replica clock."""
        return max(
            (r.clock for s in self.shards for r in s.replicas),
            default=0.0,
        )

    def fleet_metrics(self) -> ServiceMetrics:
        """Shard metrics rolled up (histogram merge, not averaging)."""
        return ServiceMetrics.merged(s.metrics for s in self.shards)

    def replica_metrics(self) -> ServiceMetrics:
        """All replicas' tick-domain service metrics, merged."""
        return ServiceMetrics.merged(
            r.service.metrics for s in self.shards for r in s.replicas
        )

    def _report(self, requests: List[FabricRequest]) -> FabricReport:
        fleet = self.fleet_metrics()
        fleet.elapsed_ms = self.elapsed_ms
        return FabricReport(
            requests=requests,
            fleet=fleet,
            replicas=self.replica_metrics(),
            per_shard=[s.snapshot() for s in self.shards],
            elapsed_ms=self.elapsed_ms,
        )
