"""Logical complex-object queries (the Revelation side of Figure 1).

"A query can be executed naively within the run-time system or it can
be 'revealed'.  Revealing a query is an attempt to transform a query
into its equivalent complex object algebra expression.  Once a query is
transformed …, it is optimized."  (paper, Section 3)

This module is the post-revealer representation: a declarative
:class:`ComplexObjectQuery` that states *what* to retrieve —

* the template of the complex objects,
* the root set (defaults to every root the database loaded),
* **component predicates**, each bound to a template label (these are
  the behavioural conditions the revealer extracted, e.g. the Oregon
  restriction of Section 4),
* **residual predicates** over the fully assembled object (conditions
  that need several components at once, like ``lives-close-to-father``,
  or "computations that are not algebraically expressible"),
* an optional projection.

The :mod:`repro.query.optimizer` turns this into a physical plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.assembled import AssembledComplexObject
from repro.core.predicates import Predicate
from repro.core.template import Template
from repro.errors import PlanError
from repro.storage.oid import Oid


@dataclass(frozen=True)
class ComponentPredicate:
    """A predicate the revealer localized to one template component."""

    label: str
    predicate: Predicate

    def __str__(self) -> str:
        return f"{self.label}: {self.predicate}"


@dataclass(frozen=True)
class ComplexObjectQuery:
    """A declarative query over a set of complex objects."""

    template: Template
    #: explicit root set; ``None`` means every loaded root.
    roots: Optional[Tuple[Oid, ...]] = None
    component_predicates: Tuple[ComponentPredicate, ...] = ()
    residual_predicates: Tuple[Callable[[AssembledComplexObject], bool], ...] = ()
    projection: Optional[Callable[[AssembledComplexObject], object]] = None

    # -- builder-style refinement -----------------------------------------

    def over(self, roots: Sequence[Oid]) -> "ComplexObjectQuery":
        """Restrict the query to an explicit root set."""
        return replace(self, roots=tuple(roots))

    def where_component(
        self, label: str, predicate: Predicate
    ) -> "ComplexObjectQuery":
        """Add a predicate on one template component (pushable)."""
        self.template.node(label)  # validates the label eagerly
        return replace(
            self,
            component_predicates=self.component_predicates
            + (ComponentPredicate(label, predicate),),
        )

    def where(
        self, predicate: Callable[[AssembledComplexObject], bool]
    ) -> "ComplexObjectQuery":
        """Add a residual predicate over the assembled object."""
        return replace(
            self,
            residual_predicates=self.residual_predicates + (predicate,),
        )

    def select(
        self, projection: Callable[[AssembledComplexObject], object]
    ) -> "ComplexObjectQuery":
        """Project each qualifying complex object."""
        if self.projection is not None:
            raise PlanError("query already has a projection")
        return replace(self, projection=projection)

    # -- introspection ---------------------------------------------------------

    def estimated_selectivity(self) -> float:
        """Product of component-predicate selectivities (independence)."""
        estimate = 1.0
        for component in self.component_predicates:
            estimate *= component.predicate.selectivity
        return estimate

    def describe(self) -> str:
        """Human-readable summary for EXPLAIN output."""
        parts = [f"retrieve complex objects ({self.template.node_count} components)"]
        if self.roots is not None:
            parts.append(f"over {len(self.roots)} explicit roots")
        for component in self.component_predicates:
            parts.append(f"where component {component}")
        if self.residual_predicates:
            parts.append(
                f"where {len(self.residual_predicates)} residual predicate(s)"
            )
        if self.projection is not None:
            parts.append("project result")
        return "\n".join(parts)


def retrieve(template: Template) -> ComplexObjectQuery:
    """Entry point: a query retrieving every complex object of a template."""
    return ComplexObjectQuery(template=template.finalize())
