"""Logical queries and the rule-based optimizer (Figure 1's pipeline)."""

from repro.query.logical import (
    ComplexObjectQuery,
    ComponentPredicate,
    retrieve,
)
from repro.query.optimizer import (
    DEFAULT_WINDOW_CEILING,
    OptimizedPlan,
    Optimizer,
    PhysicalChoice,
)
from repro.query.statistics import (
    LabelStatistics,
    SampleStatistics,
    annotate_from_sample,
    collect_statistics,
)

__all__ = [
    "ComplexObjectQuery",
    "ComponentPredicate",
    "DEFAULT_WINDOW_CEILING",
    "LabelStatistics",
    "OptimizedPlan",
    "Optimizer",
    "PhysicalChoice",
    "SampleStatistics",
    "annotate_from_sample",
    "collect_statistics",
    "retrieve",
]
