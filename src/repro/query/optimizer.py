"""Rule-based optimization of complex-object queries (Figure 1's box).

"Optimization includes choosing physical algebra operators, also called
set processing methods, for the logical algebra operators."  The
original Revelation used an optimizer generator; this reproduction
implements the rules that matter for the assembly operator:

1. **Predicate pushdown into the template.**  Component predicates move
   from the logical query into a *clone* of the template, so assembly
   evaluates them during retrieval and aborts failing objects early
   (Section 6.5) — the optimization the paper's Oregon example does by
   hand.
2. **Scheduler choice.**  The elevator is the default (the paper's
   across-the-board winner); when the pushed-down template carries
   predicates, the integrated adaptive scheduler (Section 7) is chosen.
3. **Window sizing.**  The window is the largest that the buffer can
   pin (inverting Section 6.3.3's bound), capped by a configurable
   ceiling with the paper's diminishing-returns default of 50.
4. **Physical plan shape.**  Root source → assembly → residual filters
   → projection, each an ordinary Volcano operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.assembly import Assembly
from repro.core.template import Template
from repro.core.tuning import max_window_for_buffer
from repro.errors import PlanError
from repro.query.logical import ComplexObjectQuery
from repro.storage.oid import Oid
from repro.storage.store import ObjectStore
from repro.volcano.filters import Filter, Project
from repro.volcano.iterator import ListSource, VolcanoIterator
from repro.volcano.plan import explain as explain_plan

#: The paper's diminishing-returns window (Section 6.3.3).
DEFAULT_WINDOW_CEILING = 50


@dataclass
class PhysicalChoice:
    """The optimizer's decisions, for EXPLAIN output and tests."""

    scheduler: str
    window_size: int
    pushed_predicates: int
    estimated_selectivity: float

    def __str__(self) -> str:
        return (
            f"scheduler={self.scheduler} window={self.window_size} "
            f"pushed={self.pushed_predicates} "
            f"est_selectivity={self.estimated_selectivity:.3f}"
        )


@dataclass
class OptimizedPlan:
    """A ready-to-run physical plan plus the choices behind it."""

    plan: VolcanoIterator
    choice: PhysicalChoice
    assembly: Assembly

    def execute(self) -> list:
        """Run the plan to completion."""
        return self.plan.execute()

    def explain(self) -> str:
        """Operator tree plus the optimizer's decisions."""
        return f"{explain_plan(self.plan)}\n-- {self.choice}"


class Optimizer:
    """Chooses physical settings for a :class:`ComplexObjectQuery`.

    ``buffer_capacity`` mirrors the buffer manager's configuration (or
    ``None`` for unbounded); ``window_ceiling`` caps window growth at
    the paper's diminishing-returns point.
    """

    def __init__(
        self,
        buffer_capacity: Optional[int] = None,
        window_ceiling: int = DEFAULT_WINDOW_CEILING,
        use_sharing_statistics: bool = True,
    ) -> None:
        if window_ceiling <= 0:
            raise PlanError("window_ceiling must be positive")
        self._buffer_capacity = buffer_capacity
        self._window_ceiling = window_ceiling
        self._use_sharing = use_sharing_statistics

    # -- rules ---------------------------------------------------------------

    def _push_predicates(self, query: ComplexObjectQuery) -> Template:
        """Rule 1: move component predicates into a template clone.

        Several predicates on one component conjoin (selectivities
        multiply); a predicate already on the catalog template conjoins
        too, so query restrictions stack on schema-level invariants.
        """
        from repro.core.predicates import conjunction

        by_label = {}
        for component in query.component_predicates:
            by_label.setdefault(component.label, []).append(
                component.predicate
            )
        template = query.template.clone()
        for label, predicates in by_label.items():
            node = template.node(label)
            if node.predicate is not None:
                predicates = [node.predicate] + predicates
            node.predicate = conjunction(predicates)
        template.reannotate()
        return template

    def _choose_scheduler(self, template: Template) -> str:
        """Rule 2: adaptive when predicates exist, else elevator."""
        return "adaptive" if template.has_predicates() else "elevator"

    def _choose_window(self, template: Template) -> int:
        """Rule 3: as large as the buffer allows, capped at the knee."""
        if self._buffer_capacity is None:
            return self._window_ceiling
        feasible = max_window_for_buffer(self._buffer_capacity, template)
        return max(1, min(feasible, self._window_ceiling))

    # -- entry point ------------------------------------------------------------

    def optimize(
        self,
        query: ComplexObjectQuery,
        store: ObjectStore,
        default_roots: Optional[List[Oid]] = None,
    ) -> OptimizedPlan:
        """Compile the logical query into a physical plan over ``store``."""
        roots: List[Oid]
        if query.roots is not None:
            roots = list(query.roots)
        elif default_roots is not None:
            roots = list(default_roots)
        else:
            raise PlanError(
                "query names no roots and the database provided none"
            )

        template = self._push_predicates(query)
        scheduler = self._choose_scheduler(template)
        window = self._choose_window(template)

        assembly = Assembly(
            ListSource(roots),
            store,
            template,
            window_size=window,
            scheduler=scheduler,
            use_sharing_statistics=self._use_sharing,
        )
        plan: VolcanoIterator = assembly
        for residual in query.residual_predicates:
            plan = Filter(plan, residual)
        if query.projection is not None:
            plan = Project(plan, query.projection)

        choice = PhysicalChoice(
            scheduler=scheduler,
            window_size=window,
            pushed_predicates=len(query.component_predicates),
            estimated_selectivity=query.estimated_selectivity(),
        )
        return OptimizedPlan(plan=plan, choice=choice, assembly=assembly)
