"""Sampling-based statistics collection for templates.

The paper assumes templates arrive annotated — "the statistical
information consists of the degree of sharing between objects and
predicates with predicate selectivity" (Section 5) — but something must
*produce* those numbers.  This module closes that loop the way real
optimizers do: assemble a random sample of complex objects and measure

* per-component **predicate pass rates** (estimated selectivities for
  the conditions a query wants to push down), and
* per-component **sharing degree** (distinct objects / references at a
  label).

``annotate_from_sample`` returns a template clone carrying the measured
numbers, ready for :class:`repro.query.optimizer.Optimizer` — so the
whole pipeline can run from data, with no hand-written estimates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.assembly import Assembly
from repro.core.predicates import Predicate
from repro.core.template import Template
from repro.errors import PlanError
from repro.storage.oid import Oid
from repro.storage.record import ObjectRecord
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource


@dataclass
class LabelStatistics:
    """Measured facts about one template component across the sample."""

    label: str
    #: sampled complex objects in which the component was present.
    occurrences: int = 0
    #: distinct storage objects observed at this label.
    distinct_objects: int = 0
    #: pass counts per named candidate predicate.
    predicate_passes: Dict[str, int] = field(default_factory=dict)

    @property
    def sharing_degree(self) -> float:
        """Distinct objects / references (1.0 = nothing shared)."""
        if self.occurrences == 0:
            return 0.0
        return self.distinct_objects / self.occurrences

    def selectivity(self, predicate_name: str) -> float:
        """Observed pass rate of one candidate predicate."""
        if self.occurrences == 0:
            return 1.0
        return self.predicate_passes.get(predicate_name, 0) / self.occurrences


@dataclass
class SampleStatistics:
    """Everything measured over one sample run."""

    sample_size: int
    labels: Dict[str, LabelStatistics]

    def for_label(self, label: str) -> LabelStatistics:
        """Statistics of one component (raises KeyError if unseen)."""
        return self.labels[label]


def collect_statistics(
    store: ObjectStore,
    template: Template,
    roots: Sequence[Oid],
    candidates: Optional[Dict[str, Callable[[ObjectRecord], bool]]] = None,
    sample_size: int = 100,
    seed: int = 0,
) -> SampleStatistics:
    """Assemble a sample and measure per-label statistics.

    ``candidates`` maps template labels to boolean tests whose pass
    rates should be measured.  The sample template is stripped of
    predicates so every sampled object assembles fully (statistics
    must see rejected objects too).
    """
    if sample_size <= 0:
        raise PlanError("sample_size must be positive")
    if not roots:
        raise PlanError("cannot sample an empty root set")
    candidates = candidates or {}
    rng = random.Random(seed)
    chosen = (
        list(roots)
        if len(roots) <= sample_size
        else rng.sample(list(roots), sample_size)
    )

    probe = template.clone()
    for node in probe.nodes():
        node.predicate = None
    probe.reannotate()

    operator = Assembly(
        ListSource(chosen), store, probe, window_size=min(16, len(chosen)),
        scheduler="elevator",
    )
    labels: Dict[str, LabelStatistics] = {
        node.label: LabelStatistics(label=node.label)
        for node in probe.nodes()
    }
    seen_oids: Dict[str, set] = {node.label: set() for node in probe.nodes()}
    for cobj in operator.rows():
        for obj in cobj.scan():
            stats = labels[obj.node.label]
            stats.occurrences += 1
            seen_oids[obj.node.label].add(obj.oid)
            test = candidates.get(obj.node.label)
            if test is not None:
                record = ObjectRecord(
                    ints=list(obj.ints),
                    refs=list(obj.ref_oids),
                    fmt=store.fmt,
                )
                if test(record):
                    name = _candidate_name(obj.node.label)
                    stats.predicate_passes[name] = (
                        stats.predicate_passes.get(name, 0) + 1
                    )
    for label, oids in seen_oids.items():
        labels[label].distinct_objects = len(oids)
    return SampleStatistics(sample_size=len(chosen), labels=labels)


def _candidate_name(label: str) -> str:
    return f"sampled@{label}"


def annotate_from_sample(
    template: Template,
    store: ObjectStore,
    roots: Sequence[Oid],
    predicates: Optional[Dict[str, Callable[[ObjectRecord], bool]]] = None,
    sample_size: int = 100,
    seed: int = 0,
    shared_threshold: float = 0.95,
) -> Template:
    """A template clone annotated with *measured* statistics.

    * Labels whose observed sharing degree falls below
      ``shared_threshold`` are marked ``shared`` with the measured
      degree (references at the label land on fewer distinct objects
      than there are references).
    * For every label in ``predicates``, a :class:`Predicate` with the
      measured pass rate is attached.
    """
    predicates = predicates or {}
    stats = collect_statistics(
        store, template, roots,
        candidates=predicates, sample_size=sample_size, seed=seed,
    )
    annotated = template.clone()
    for node in annotated.nodes():
        label_stats = stats.labels.get(node.label)
        if label_stats is None or label_stats.occurrences == 0:
            continue
        degree = label_stats.sharing_degree
        if degree < shared_threshold:
            node.shared = True
            node.sharing_degree = min(1.0, max(0.0, degree))
        if node.label in predicates:
            name = _candidate_name(node.label)
            annotated_selectivity = label_stats.selectivity(name)
            node.predicate = Predicate(
                name=name,
                fn=predicates[node.label],
                selectivity=annotated_selectivity,
            )
    return annotated.reannotate()
