"""Application-level object model.

The paper distinguishes application-level objects from storage-layer
objects (footnotes 3 and 4: "An application-level object's state may be
composed of many storage-layer objects").  This module provides the
minimal Revelation-style model the experiments and examples need:

* :class:`ObjectType` — a named type whose integer and reference fields
  map onto the fixed slots of the storage record format;
* :class:`TypeRegistry` — type catalog plus OID generation;
* :class:`ObjectDef` / :class:`ComplexObjectDef` — in-memory
  definitions of objects and complex-object graphs, produced by
  workload generators and consumed by clustering layouts.

Objects reference other objects by embedding OIDs in their state
(Section 3); a :class:`ComplexObjectDef` is "one or more objects or
object fragments connected by inter-object references" (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import RecordError, ReproError
from repro.storage.oid import NULL_OID, Oid
from repro.storage.record import PAPER_FORMAT, ObjectRecord, RecordFormat


class ModelError(ReproError):
    """Object-model misuse (unknown type, bad field name, ...)."""


@dataclass(frozen=True)
class ObjectType:
    """A named object type mapped onto the storage record format.

    ``int_fields`` and ``ref_fields`` name the leading integer and
    reference slots; remaining slots are padding (zero / null).
    """

    type_id: int
    name: str
    int_fields: Tuple[str, ...] = ()
    ref_fields: Tuple[str, ...] = ()
    fmt: RecordFormat = PAPER_FORMAT

    def __post_init__(self) -> None:
        if self.type_id <= 0:
            raise ModelError("type_id must be positive (0 is the null OID)")
        if len(self.int_fields) > self.fmt.n_ints:
            raise ModelError(
                f"type {self.name!r}: {len(self.int_fields)} int fields "
                f"exceed format capacity {self.fmt.n_ints}"
            )
        if len(self.ref_fields) > self.fmt.n_refs:
            raise ModelError(
                f"type {self.name!r}: {len(self.ref_fields)} ref fields "
                f"exceed format capacity {self.fmt.n_refs}"
            )
        if len(set(self.int_fields) | set(self.ref_fields)) != len(
            self.int_fields
        ) + len(self.ref_fields):
            raise ModelError(f"type {self.name!r} has duplicate field names")

    def int_slot(self, field_name: str) -> int:
        """Slot index of a named integer field."""
        try:
            return self.int_fields.index(field_name)
        except ValueError:
            raise ModelError(
                f"type {self.name!r} has no int field {field_name!r}"
            ) from None

    def ref_slot(self, field_name: str) -> int:
        """Slot index of a named reference field."""
        try:
            return self.ref_fields.index(field_name)
        except ValueError:
            raise ModelError(
                f"type {self.name!r} has no ref field {field_name!r}"
            ) from None


class TypeRegistry:
    """Catalog of object types plus per-type OID serial counters."""

    def __init__(self, fmt: RecordFormat = PAPER_FORMAT) -> None:
        self.fmt = fmt
        self._by_id: Dict[int, ObjectType] = {}
        self._by_name: Dict[str, ObjectType] = {}
        self._serials: Dict[int, int] = {}

    def define(
        self,
        name: str,
        int_fields: Sequence[str] = (),
        ref_fields: Sequence[str] = (),
    ) -> ObjectType:
        """Create and register a new type; type ids are assigned densely."""
        if name in self._by_name:
            raise ModelError(f"type {name!r} already defined")
        type_id = len(self._by_id) + 1
        otype = ObjectType(
            type_id=type_id,
            name=name,
            int_fields=tuple(int_fields),
            ref_fields=tuple(ref_fields),
            fmt=self.fmt,
        )
        self._by_id[type_id] = otype
        self._by_name[name] = otype
        self._serials[type_id] = 0
        return otype

    def by_name(self, name: str) -> ObjectType:
        """Look a type up by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ModelError(f"unknown type {name!r}") from None

    def by_id(self, type_id: int) -> ObjectType:
        """Look a type up by id."""
        try:
            return self._by_id[type_id]
        except KeyError:
            raise ModelError(f"unknown type id {type_id}") from None

    def type_of(self, oid: Oid) -> ObjectType:
        """The type an OID belongs to (encoded in its ``type_id``)."""
        return self.by_id(oid.type_id)

    def new_oid(self, type_name: str) -> Oid:
        """Mint a fresh OID of the named type."""
        otype = self.by_name(type_name)
        self._serials[otype.type_id] += 1
        return Oid(otype.type_id, self._serials[otype.type_id])

    def types(self) -> List[ObjectType]:
        """All registered types, in definition order."""
        return [self._by_id[tid] for tid in sorted(self._by_id)]

    def __len__(self) -> int:
        return len(self._by_id)


@dataclass
class ObjectDef:
    """An in-memory object definition awaiting placement on disk."""

    oid: Oid
    otype: ObjectType
    ints: Dict[str, int] = field(default_factory=dict)
    refs: Dict[str, Oid] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.oid.type_id != self.otype.type_id:
            raise ModelError(
                f"OID {self.oid} does not belong to type {self.otype.name!r}"
            )
        for name in self.ints:
            self.otype.int_slot(name)
        for name in self.refs:
            self.otype.ref_slot(name)

    def to_record(self) -> ObjectRecord:
        """Render the definition into a storage record (padded slots)."""
        fmt = self.otype.fmt
        ints = [0] * fmt.n_ints
        for name, value in self.ints.items():
            ints[self.otype.int_slot(name)] = value
        refs = [NULL_OID] * fmt.n_refs
        for name, target in self.refs.items():
            refs[self.otype.ref_slot(name)] = target
        # ints/refs have the right lengths by construction, so skip the
        # ObjectRecord length validation (layout builds call this once
        # per stored object).
        record = ObjectRecord.__new__(ObjectRecord)
        record.ints = ints
        record.refs = refs
        record.fmt = fmt
        return record

    def referenced_oids(self) -> List[Oid]:
        """Non-null references, in field order."""
        return [
            self.refs[name]
            for name in self.otype.ref_fields
            if name in self.refs and not self.refs[name].is_null()
        ]


@dataclass
class ComplexObjectDef:
    """A complex object: a root plus the storage objects it spans.

    ``objects`` holds the *private* components; OIDs referenced but not
    present are shared components owned by the database at large
    (Section 5's "borders of shared components").
    """

    root: Oid
    objects: Dict[Oid, ObjectDef] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.root not in self.objects:
            raise ModelError(
                f"complex object root {self.root} missing from objects"
            )

    def add(self, obj: ObjectDef) -> None:
        """Attach another private component."""
        if obj.oid in self.objects:
            raise ModelError(f"{obj.oid} already part of this complex object")
        self.objects[obj.oid] = obj

    def __len__(self) -> int:
        return len(self.objects)

    def __iter__(self) -> Iterator[ObjectDef]:
        return iter(self.objects.values())

    def external_refs(self) -> List[Oid]:
        """References leaving this complex object (shared components)."""
        return [
            target
            for obj in self.objects.values()
            for target in obj.referenced_oids()
            if target not in self.objects
        ]

    def traverse_depth_first(self) -> List[ObjectDef]:
        """Private components in depth-first, field-order traversal.

        Child order is "determined by the child reference storage order
        in the parent's state" (paper, footnote 6).
        """
        seen: Dict[Oid, None] = {}
        order: List[ObjectDef] = []
        stack: List[Oid] = [self.root]
        while stack:
            oid = stack.pop()
            if oid in seen or oid not in self.objects:
                continue
            seen[oid] = None
            obj = self.objects[oid]
            order.append(obj)
            children = [c for c in obj.referenced_oids() if c in self.objects]
            stack.extend(reversed(children))
        return order


def validate_database(
    database: Sequence[ComplexObjectDef],
    shared_pool: Optional[Dict[Oid, ObjectDef]] = None,
) -> None:
    """Check referential integrity of a generated database.

    Every reference must land on a private component of the same
    complex object or on an object in ``shared_pool``.  Raises
    :class:`ModelError` on a dangling reference or duplicated OID.
    """
    shared_pool = shared_pool or {}
    seen: Dict[Oid, int] = {}
    for index, cobj in enumerate(database):
        for oid in cobj.objects:
            if oid in seen:
                raise ModelError(
                    f"OID {oid} owned by complex objects "
                    f"{seen[oid]} and {index}"
                )
            if oid in shared_pool:
                raise ModelError(f"OID {oid} is both private and shared")
            seen[oid] = index
    for cobj in database:
        for obj in cobj.objects.values():
            for target in obj.referenced_oids():
                if target not in cobj.objects and target not in shared_pool:
                    raise ModelError(
                        f"{obj.oid} references {target}, which is neither a "
                        f"private component nor a shared object"
                    )
