"""Application-level object model: types, objects, complex-object graphs."""

from repro.objects.builder import GraphBuilder
from repro.objects.model import (
    ComplexObjectDef,
    ModelError,
    ObjectDef,
    ObjectType,
    TypeRegistry,
    validate_database,
)

__all__ = [
    "ComplexObjectDef",
    "GraphBuilder",
    "ModelError",
    "ObjectDef",
    "ObjectType",
    "TypeRegistry",
    "validate_database",
]
