"""Fluent construction of complex-object graphs.

Workload generators and examples build databases through
:class:`GraphBuilder`: define types once, then mint objects, wire
references, and group objects into complex objects.  The builder only
produces in-memory :class:`~repro.objects.model.ComplexObjectDef`
graphs; clustering layouts (:mod:`repro.cluster`) decide physical
placement afterwards — the separation the paper's Figures 8–10 rely on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.objects.model import (
    ComplexObjectDef,
    ModelError,
    ObjectDef,
    ObjectType,
    TypeRegistry,
    validate_database,
)
from repro.storage.oid import Oid
from repro.storage.record import PAPER_FORMAT, RecordFormat


class GraphBuilder:
    """Accumulates objects and groups them into complex objects."""

    def __init__(self, registry: Optional[TypeRegistry] = None) -> None:
        self.registry = registry if registry is not None else TypeRegistry()
        self._objects: Dict[Oid, ObjectDef] = {}
        self._grouped: Dict[Oid, Oid] = {}  # component oid -> root oid
        self._complex: List[ComplexObjectDef] = []
        self._shared: Dict[Oid, ObjectDef] = {}

    # -- types ----------------------------------------------------------------

    def define_type(
        self,
        name: str,
        int_fields: Sequence[str] = (),
        ref_fields: Sequence[str] = (),
    ) -> ObjectType:
        """Define a new object type (delegates to the registry)."""
        return self.registry.define(name, int_fields, ref_fields)

    # -- objects --------------------------------------------------------------

    def new_object(
        self,
        type_name: str,
        ints: Optional[Dict[str, int]] = None,
        refs: Optional[Dict[str, Oid]] = None,
    ) -> ObjectDef:
        """Mint an object of ``type_name`` with the given field values."""
        otype = self.registry.by_name(type_name)
        oid = self.registry.new_oid(type_name)
        obj = ObjectDef(
            oid=oid, otype=otype, ints=dict(ints or {}), refs=dict(refs or {})
        )
        self._objects[oid] = obj
        return obj

    def set_ref(self, source: ObjectDef, field_name: str, target: Oid) -> None:
        """Wire ``source.field_name`` to ``target`` after creation."""
        source.otype.ref_slot(field_name)
        source.refs[field_name] = target

    def get(self, oid: Oid) -> ObjectDef:
        """Look up a built object by OID."""
        try:
            return self._objects[oid]
        except KeyError:
            try:
                return self._shared[oid]
            except KeyError:
                raise ModelError(f"{oid} was not built here") from None

    # -- grouping -------------------------------------------------------------

    def complex_object(
        self, root: ObjectDef, components: Sequence[ObjectDef] = ()
    ) -> ComplexObjectDef:
        """Group a root and its private components into a complex object."""
        cobj = ComplexObjectDef(root=root.oid, objects={root.oid: root})
        self._claim(root.oid, root.oid)
        for comp in components:
            cobj.add(comp)
            self._claim(comp.oid, root.oid)
        self._complex.append(cobj)
        return cobj

    def mark_shared(self, obj: ObjectDef) -> None:
        """Move an object into the shared pool (referenced across roots)."""
        if obj.oid in self._grouped:
            raise ModelError(
                f"{obj.oid} already belongs to complex object "
                f"{self._grouped[obj.oid]}"
            )
        self._shared[obj.oid] = obj
        self._objects.pop(obj.oid, None)

    def _claim(self, oid: Oid, root: Oid) -> None:
        if oid in self._shared:
            raise ModelError(f"{oid} is shared; cannot be private to {root}")
        if oid in self._grouped:
            raise ModelError(
                f"{oid} already belongs to complex object {self._grouped[oid]}"
            )
        self._grouped[oid] = root

    # -- results ----------------------------------------------------------------

    @property
    def complex_objects(self) -> List[ComplexObjectDef]:
        """All complex objects built so far."""
        return list(self._complex)

    @property
    def shared_objects(self) -> Dict[Oid, ObjectDef]:
        """The shared-component pool."""
        return dict(self._shared)

    def ungrouped(self) -> List[ObjectDef]:
        """Objects minted but not yet grouped or shared (should be empty)."""
        return [
            obj
            for oid, obj in self._objects.items()
            if oid not in self._grouped
        ]

    def validate(self) -> None:
        """Referential-integrity check over everything built."""
        loose = self.ungrouped()
        if loose:
            raise ModelError(
                f"{len(loose)} objects were never grouped "
                f"(first: {loose[0].oid})"
            )
        validate_database(self._complex, self._shared)
