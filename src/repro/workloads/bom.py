"""A bill-of-materials workload: the paper's engineering motivation.

The introduction motivates OODBMSs with "more complex data such as
those found in engineering applications"; the classic case is a product
structure: assemblies containing sub-assemblies containing parts, with
ubiquitous standard parts (fasteners, connectors) shared across every
product.  This workload builds that shape:

* each **product** is a recursive part tree (fan-out up to
  :data:`MAX_SUBPARTS`, depth up to ``depth`` levels), sparser than the
  template (real assemblies are irregular);
* leaves may reference a catalog of **standard parts**, shared across
  all products — the sharing pattern where the shared-component table
  pays off hardest;
* the template is declared **recursively** (one ``Part`` node whose
  sub-part slots re-enter it), exercising Section 5's Batory property
  at depth > 1.

``rolled_up_cost`` computes each product's cost over the swizzled
structure; the generator records the oracle during construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.assembled import AssembledComplexObject, AssembledObject
from repro.core.template import Template, TemplateNode
from repro.errors import ReproError
from repro.objects.builder import GraphBuilder
from repro.objects.model import ComplexObjectDef, ObjectDef, TypeRegistry
from repro.storage.oid import Oid

#: Maximum sub-part slots per part (reference slots 0..2).
MAX_SUBPARTS = 3
#: Reference slot of a leaf part's standard-part link.
STANDARD_SLOT = 3
#: Integer slots: part id, level, unit cost, quantity.
COST_SLOT = 2
QUANTITY_SLOT = 3


@dataclass
class BomDatabase:
    """Generated products plus the standard-part catalog."""

    registry: TypeRegistry
    complex_objects: List[ComplexObjectDef]
    shared_pool: Dict[Oid, ObjectDef] = field(default_factory=dict)
    depth: int = 3
    #: oracle: rolled-up cost of each product, in generation order.
    costs: List[int] = field(default_factory=list)

    @property
    def n_products(self) -> int:
        """Number of products (complex-object roots)."""
        return len(self.complex_objects)


def generate_bom(
    n_products: int,
    depth: int = 3,
    catalog_size: int = 25,
    standard_probability: float = 0.5,
    seed: int = 33,
) -> BomDatabase:
    """Generate ``n_products`` recursive product structures."""
    if n_products <= 0:
        raise ReproError("need at least one product")
    if depth <= 0:
        raise ReproError("need at least one level")
    if catalog_size < 0:
        raise ReproError("catalog_size must be non-negative")
    if not 0.0 <= standard_probability <= 1.0:
        raise ReproError("standard_probability must be in [0, 1]")

    rng = random.Random(seed)
    registry = TypeRegistry()
    registry.define(
        "Part",
        int_fields=("part_id", "level", "cost", "quantity"),
        ref_fields=("sub0", "sub1", "sub2", "standard", "r4", "r5", "r6", "r7"),
    )
    registry.define(
        "StandardPart",
        int_fields=("part_id", "level", "cost", "quantity"),
    )
    builder = GraphBuilder(registry)

    catalog: List[ObjectDef] = []
    catalog_cost: Dict[Oid, int] = {}
    if standard_probability > 0.0 and catalog_size > 0:
        for part_id in range(catalog_size):
            cost = rng.randrange(1, 50)
            standard = builder.new_object(
                "StandardPart",
                ints={
                    "part_id": -(part_id + 1),
                    "level": -1,
                    "cost": cost,
                    "quantity": 1,
                },
            )
            builder.mark_shared(standard)
            catalog.append(standard)
            catalog_cost[standard.oid] = cost

    database = BomDatabase(
        registry=registry, complex_objects=[], depth=depth
    )
    part_counter = [0]
    for _product in range(n_products):
        components: List[ObjectDef] = []

        def build_part(level: int) -> "tuple[ObjectDef, int]":
            refs: Dict[str, Oid] = {}
            subtree_cost = 0
            if level + 1 < depth:
                for slot in range(rng.randint(0, MAX_SUBPARTS)):
                    child, child_cost = build_part(level + 1)
                    refs[f"sub{slot}"] = child.oid
                    subtree_cost += child_cost
            elif catalog and rng.random() < standard_probability:
                standard = rng.choice(catalog)
                refs["standard"] = standard.oid
                subtree_cost += catalog_cost[standard.oid]
            cost = rng.randrange(1, 100)
            quantity = rng.randint(1, 4)
            part = builder.new_object(
                "Part",
                ints={
                    "part_id": part_counter[0],
                    "level": level,
                    "cost": cost,
                    "quantity": quantity,
                },
                refs=refs,
            )
            part_counter[0] += 1
            if level > 0:
                components.append(part)
            return part, cost * quantity + subtree_cost

        root, total = build_part(0)
        builder.complex_object(root, components)
        database.costs.append(total)

    builder.validate()
    database.complex_objects = builder.complex_objects
    database.shared_pool = builder.shared_objects
    return database


def bom_template(
    depth: int = 3, catalog_sharing: float = 0.3
) -> Template:
    """The recursive product template: one Part node, self-re-entrant.

    Declared with :meth:`TemplateNode.recurse` on every sub-part slot
    and unrolled ``depth - 1`` levels by finalization — the template is
    written once, whatever the product depth.
    """
    if depth <= 0:
        raise ReproError("need at least one level")
    part = TemplateNode("part", type_name="Part")
    part.child(
        STANDARD_SLOT,
        "standard",
        type_name="StandardPart",
        shared=True,
        sharing_degree=catalog_sharing,
    )
    for slot in range(MAX_SUBPARTS):
        part.recurse(slot, target_label="part", max_depth=depth - 1)
    return Template(part).finalize()


def rolled_up_cost(product: AssembledComplexObject) -> int:
    """Total cost of a product over the swizzled structure.

    Standard parts count once per *reference* (each use is a physical
    instance in the product), exactly as the generator's oracle does.
    """

    def roll(part: AssembledObject) -> int:
        own = part.ints[COST_SLOT] * part.ints[QUANTITY_SLOT]
        if part.node.type_name == "StandardPart":
            own = part.ints[COST_SLOT]
        for child in part.children.values():
            own += roll(child)
        return own

    return roll(product.root)
