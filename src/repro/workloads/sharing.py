"""Sharing-degree measurement and prediction helpers (Section 6.4).

"Sharing is the ratio of shared objects to sharing objects.  For
example, 100 objects sharing 5 sub-objects exhibit .05 sharing."

These helpers compute the realized sharing statistics of a generated
database (the numbers a real system's statistics collector would
maintain in the template) and predict the read savings the
shared-component table should deliver — the oracle the Figure 15
benchmark and its tests check against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.objects.model import ComplexObjectDef, ObjectDef
from repro.storage.oid import Oid


@dataclass(frozen=True)
class SharingProfile:
    """Realized sharing statistics of a database."""

    #: complex objects that reference at least one shared component.
    sharing_objects: int
    #: distinct shared components referenced at all.
    shared_objects: int
    #: total references landing on shared components.
    shared_references: int

    @property
    def degree(self) -> float:
        """The paper's ratio: shared objects / sharing objects."""
        if self.sharing_objects == 0:
            return 0.0
        return self.shared_objects / self.sharing_objects

    @property
    def duplicate_references(self) -> int:
        """References beyond the first to each shared component.

        With the shared-component table enabled, exactly these many
        object fetches are links instead of reads — the "reduces the
        total number of reads" effect of Figure 15.
        """
        return self.shared_references - self.shared_objects


def measure_sharing(
    database: Sequence[ComplexObjectDef],
    shared_pool: Dict[Oid, ObjectDef],
) -> SharingProfile:
    """Compute the realized sharing statistics of a generated database."""
    reference_counts: Dict[Oid, int] = {}
    sharing_objects = 0
    for cobj in database:
        hits = 0
        for obj in cobj.objects.values():
            for target in obj.referenced_oids():
                if target in shared_pool:
                    reference_counts[target] = (
                        reference_counts.get(target, 0) + 1
                    )
                    hits += 1
        if hits:
            sharing_objects += 1
    return SharingProfile(
        sharing_objects=sharing_objects,
        shared_objects=len(reference_counts),
        shared_references=sum(reference_counts.values()),
    )


def expected_fetches_with_sharing(
    database: Sequence[ComplexObjectDef],
    shared_pool: Dict[Oid, ObjectDef],
) -> int:
    """Object fetches a full assembly needs when the table is on.

    Every private component once, plus each *referenced* shared
    component exactly once.
    """
    profile = measure_sharing(database, shared_pool)
    private = sum(len(cobj) for cobj in database)
    return private + profile.shared_objects


def expected_fetches_without_sharing(
    database: Sequence[ComplexObjectDef],
    shared_pool: Dict[Oid, ObjectDef],
) -> int:
    """Object fetches with the table off: every reference pays."""
    profile = measure_sharing(database, shared_pool)
    private = sum(len(cobj) for cobj in database)
    return private + profile.shared_references
