"""A HyperModel-style document workload.

Section 6 of the paper names the HyperModel Benchmark (Anderson et al.,
EDBT 1990) as one of the object-oriented benchmarks "better suited for
our system" than relational suites.  This module provides a simplified
HyperModel database so assembly can be exercised on a workload with a
very different shape from the ACOB binary trees:

* an **aggregation (partOf) hierarchy**: each document is a tree of
  sections with fan-out 5 (the HyperModel parent/children relation),
* **attributes** on every node,
* **hypertext references**: leaves may point into a pool of shared
  annotation objects (the refTo/refFrom link web), which makes the
  sharing machinery matter outside the ACOB leaf-sharing setup.

The complex object is one document; ``hypermodel_template`` follows the
aggregation hierarchy and the annotation links.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.template import Template, TemplateNode
from repro.errors import ReproError
from repro.objects.builder import GraphBuilder
from repro.objects.model import ComplexObjectDef, ObjectDef, TypeRegistry
from repro.storage.oid import Oid

#: HyperModel aggregation fan-out (children per interior section).
FANOUT = 5
#: Reference slot of a leaf's annotation link (slots 0-4 hold children).
ANNOTATION_SLOT = 5
#: Integer slot of every node's payload attribute.
PAYLOAD_SLOT = 3


@dataclass
class HyperModelDatabase:
    """A generated document database."""

    registry: TypeRegistry
    complex_objects: List[ComplexObjectDef]
    shared_pool: Dict[Oid, ObjectDef] = field(default_factory=dict)
    levels: int = 3
    annotation_probability: float = 0.0

    @property
    def n_documents(self) -> int:
        """Number of documents (complex-object roots)."""
        return len(self.complex_objects)

    def sections_per_document(self) -> int:
        """Aggregation-hierarchy nodes per document."""
        return sum(FANOUT ** level for level in range(self.levels))


def generate_hypermodel(
    n_documents: int,
    levels: int = 3,
    annotation_probability: float = 0.3,
    annotation_pool_size: Optional[int] = None,
    seed: int = 21,
) -> HyperModelDatabase:
    """Generate ``n_documents`` documents of ``levels`` aggregation levels.

    Each leaf section carries an annotation link with
    ``annotation_probability``; link targets are drawn from a shared
    pool of ``annotation_pool_size`` objects (default: one tenth of the
    documents, at least one).
    """
    if n_documents <= 0:
        raise ReproError("need at least one document")
    if levels <= 0:
        raise ReproError("need at least one level")
    if not 0.0 <= annotation_probability <= 1.0:
        raise ReproError("annotation_probability must be in [0, 1]")

    rng = random.Random(seed)
    registry = TypeRegistry()
    registry.define(
        "Document",
        int_fields=("doc_id", "level", "seq", "payload"),
        ref_fields=tuple(f"part{i}" for i in range(FANOUT))
        + ("annotation", "r6", "r7"),
    )
    registry.define(
        "Section",
        int_fields=("doc_id", "level", "seq", "payload"),
        ref_fields=tuple(f"part{i}" for i in range(FANOUT))
        + ("annotation", "r6", "r7"),
    )
    registry.define(
        "Annotation",
        int_fields=("doc_id", "level", "seq", "payload"),
    )
    builder = GraphBuilder(registry)

    annotations: List[ObjectDef] = []
    if annotation_probability > 0.0:
        pool_size = annotation_pool_size
        if pool_size is None:
            pool_size = max(1, n_documents // 10)
        for seq in range(pool_size):
            note = builder.new_object(
                "Annotation",
                ints={
                    "doc_id": -1,
                    "level": -1,
                    "seq": seq,
                    "payload": rng.randrange(1_000_000),
                },
            )
            builder.mark_shared(note)
            annotations.append(note)

    complex_objects: List[ComplexObjectDef] = []
    for doc_id in range(n_documents):
        sections: List[ObjectDef] = []
        seq_counter = [0]

        def build_section(level: int) -> ObjectDef:
            refs: Dict[str, Oid] = {}
            if level + 1 < levels:
                for index in range(FANOUT):
                    refs[f"part{index}"] = build_section(level + 1).oid
            elif annotations and rng.random() < annotation_probability:
                refs["annotation"] = rng.choice(annotations).oid
            type_name = "Document" if level == 0 else "Section"
            node = builder.new_object(
                type_name,
                ints={
                    "doc_id": doc_id,
                    "level": level,
                    "seq": seq_counter[0],
                    "payload": rng.randrange(1_000_000),
                },
                refs=refs,
            )
            seq_counter[0] += 1
            if level > 0:
                sections.append(node)
            return node

        root = build_section(0)
        complex_objects.append(builder.complex_object(root, sections))

    builder.validate()
    return HyperModelDatabase(
        registry=registry,
        complex_objects=builder.complex_objects,
        shared_pool=builder.shared_objects,
        levels=levels,
        annotation_probability=annotation_probability,
    )


def hypermodel_template(
    levels: int = 3,
    with_annotations: bool = True,
    annotation_sharing: float = 0.3,
) -> Template:
    """Template for one document: fan-out-5 hierarchy plus annotations."""
    if levels <= 0:
        raise ReproError("need at least one level")

    counter = [0]

    def build(level: int) -> TemplateNode:
        label = f"s{counter[0]}"
        counter[0] += 1
        node = TemplateNode(
            label, type_name="Document" if level == 0 else "Section"
        )
        if level + 1 < levels:
            for slot in range(FANOUT):
                node.attach(slot, build(level + 1))
        elif with_annotations:
            node.child(
                ANNOTATION_SLOT,
                f"note@{label}",
                type_name="Annotation",
                shared=True,
                sharing_degree=annotation_sharing,
            )
        return node

    return Template(build(0)).finalize()
