"""The Section 4 example dataset: people, fathers, residences.

"This particular figure should be interpreted as a Person and his/her
father (who is also a Person) and the Residence of both child and
father."  The running query is: "Retrieve all people that live close to
(live in the same city as) their father."

This workload builds that database and its assembly template (with the
father edge expressed as a *recursive* template definition, one of the
two Batory properties Section 5 highlights).  Residences can be shared
between child and father — a realistic sharing pattern the assembly
operator resolves through its shared-component table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.assembled import AssembledComplexObject
from repro.core.template import Template, TemplateNode
from repro.errors import ReproError
from repro.objects.builder import GraphBuilder
from repro.objects.model import ComplexObjectDef, ObjectDef, TypeRegistry
from repro.storage.oid import Oid

#: Reference slots of the Person type.
FATHER_SLOT = 0
RESIDENCE_SLOT = 1
#: Integer slot of Residence.city.
CITY_SLOT = 0


@dataclass
class PersonDatabase:
    """Generated people with fathers and residences."""

    registry: TypeRegistry
    complex_objects: List[ComplexObjectDef]
    shared_pool: Dict[Oid, ObjectDef] = field(default_factory=dict)
    n_cities: int = 0
    #: oracle: does person ``i`` live in the same city as the father?
    close_to_father: List[bool] = field(default_factory=list)

    @property
    def n_people(self) -> int:
        """Number of child persons (complex-object roots)."""
        return len(self.complex_objects)


def generate_people(
    n_people: int,
    n_cities: int = 20,
    share_residence_probability: float = 0.3,
    orphan_probability: float = 0.0,
    seed: int = 11,
) -> PersonDatabase:
    """Build ``n_people`` complex objects: person → father, residences.

    With probability ``share_residence_probability`` a child lives in
    the father's residence — the same storage object, i.e. a shared
    component inside one complex object ("multiple, possibly shared,
    object references contained within a single object", Section 4).

    With probability ``orphan_probability`` a person has no recorded
    father: the reference slot stays null and the data is shallower
    than the template, which assembly must handle (and the
    ``lives-close-to-father`` query must answer ``False`` for).
    """
    if n_people <= 0:
        raise ReproError("need at least one person")
    if n_cities <= 0:
        raise ReproError("need at least one city")
    if not 0.0 <= share_residence_probability <= 1.0:
        raise ReproError("share_residence_probability must be in [0, 1]")
    if not 0.0 <= orphan_probability <= 1.0:
        raise ReproError("orphan_probability must be in [0, 1]")

    rng = random.Random(seed)
    registry = TypeRegistry()
    registry.define(
        "Person",
        int_fields=("age", "person_id"),
        ref_fields=("father", "residence", "r2", "r3", "r4", "r5", "r6", "r7"),
    )
    registry.define(
        "Residence",
        int_fields=("city", "street_no"),
        ref_fields=("r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7"),
    )
    builder = GraphBuilder(registry)
    database = PersonDatabase(
        registry=registry, complex_objects=[], n_cities=n_cities
    )

    for index in range(n_people):
        orphan = rng.random() < orphan_probability
        components = []
        refs = {}
        if not orphan:
            father_city = rng.randrange(n_cities)
            father_home = builder.new_object(
                "Residence",
                ints={"city": father_city, "street_no": rng.randrange(1000)},
            )
            father = builder.new_object(
                "Person",
                ints={"age": rng.randrange(40, 90), "person_id": 2 * index + 1},
                refs={"residence": father_home.oid},
            )
            refs["father"] = father.oid
            components.extend([father, father_home])
        shares = (not orphan) and rng.random() < share_residence_probability
        if shares:
            child_home = father_home
            child_city = father_city
        else:
            child_city = rng.randrange(n_cities)
            child_home = builder.new_object(
                "Residence",
                ints={"city": child_city, "street_no": rng.randrange(1000)},
            )
            components.append(child_home)
        refs["residence"] = child_home.oid
        child = builder.new_object(
            "Person",
            ints={"age": rng.randrange(18, 60), "person_id": 2 * index},
            refs=refs,
        )
        builder.complex_object(child, components)
        database.close_to_father.append(
            (not orphan) and child_city == father_city
        )

    builder.validate()
    database.complex_objects = builder.complex_objects
    database.shared_pool = builder.shared_objects
    return database


def person_template(share_residences: bool = True) -> Template:
    """Template: person → {father → residence, residence}.

    The father edge is declared *recursively* (a Person referencing a
    Person) and unrolled one level, demonstrating Section 5's recursive
    template definitions.  Residence nodes are marked shared when
    ``share_residences`` — child and father may point at one object.
    """
    person = TemplateNode("person", type_name="Person")
    person.child(
        RESIDENCE_SLOT,
        "residence",
        type_name="Residence",
        shared=share_residences,
        sharing_degree=0.3 if share_residences else 0.0,
    )
    person.recurse(FATHER_SLOT, target_label="person", max_depth=1)
    return Template(person).finalize()


def lives_close_to_father(assembled: AssembledComplexObject) -> bool:
    """The paper's Figure 3 method, over a swizzled complex object.

    Pure memory traversal: ``city(self.residence) ==
    city(self.father.residence)`` with no OID lookups — the payoff of
    pointer swizzling.
    """
    person = assembled.root
    father = person.child(FATHER_SLOT)
    residence = person.child(RESIDENCE_SLOT)
    if father is None or residence is None:
        return False
    father_home = father.child(RESIDENCE_SLOT)
    if father_home is None:
        return False
    return residence.ints[CITY_SLOT] == father_home.ints[CITY_SLOT]
