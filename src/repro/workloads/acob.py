"""The paper's benchmark database: ACOB-like binary trees (Section 6).

"Our benchmark most closely resembles the Altair Complex-Object
Benchmark (ACOB).  Each complex object is structured as a binary tree
of 3 levels … Each object consists of 4 integer and 8 object reference
fields equaling 96 bytes, resulting in 9 objects per page."

Each tree position is its own type (T0 for roots, T1/T2 for the second
level, T3–T6 for leaves), which is what gives inter-object clustering
its per-type clusters.  Integer fields:

* ``id`` — the complex object's index,
* ``level`` / ``position`` — tree coordinates,
* ``payload`` — uniform in [0, PAYLOAD_RANGE); selection predicates of
  the Figure 16 benchmark test this field, so a predicate
  ``payload < p * PAYLOAD_RANGE`` has true selectivity ``p``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.predicates import Predicate, int_less_than
from repro.core.template import Template, binary_tree_template
from repro.errors import ReproError
from repro.objects.builder import GraphBuilder
from repro.objects.model import ComplexObjectDef, ObjectDef, TypeRegistry
from repro.storage.oid import Oid

#: Exclusive upper bound of the ``payload`` integer field.
PAYLOAD_RANGE = 1_000_000

#: Reference slots used for the binary tree edges.
LEFT_SLOT = 0
RIGHT_SLOT = 1

#: Integer slot of the ``payload`` field (see type definition below).
PAYLOAD_SLOT = 3


@dataclass
class ACOBDatabase:
    """A generated benchmark database, ready for layout."""

    registry: TypeRegistry
    complex_objects: List[ComplexObjectDef]
    shared_pool: Dict[Oid, ObjectDef] = field(default_factory=dict)
    levels: int = 3
    #: per-complex-object payloads at each position (for test oracles).
    payloads: List[Dict[int, int]] = field(default_factory=list)

    @property
    def n_complex_objects(self) -> int:
        """Number of complex objects in the database."""
        return len(self.complex_objects)

    @property
    def positions(self) -> int:
        """Tree positions per complex object (7 for 3 levels)."""
        return 2 ** self.levels - 1

    def total_objects(self) -> int:
        """Private plus shared storage objects."""
        return (
            sum(len(c) for c in self.complex_objects) + len(self.shared_pool)
        )

    def type_ids_depth_first(self) -> List[int]:
        """Type ids in depth-first tree-position order.

        This is the cluster disk order that makes depth-first traversal
        sweep the disk forward under inter-object clustering — the
        layout artifact of Figure 11A / Figure 12.
        """
        order: List[int] = []

        def visit(position: int, level: int) -> None:
            order.append(self.registry.by_name(f"T{position}").type_id)
            if level + 1 < self.levels:
                visit(2 * position + 1, level + 1)
                visit(2 * position + 2, level + 1)

        visit(0, 0)
        return order

    def type_ids_breadth_first(self) -> List[int]:
        """Type ids in level order (the order breadth-first fetches)."""
        return [
            self.registry.by_name(f"T{p}").type_id
            for p in range(self.positions)
        ]


def make_registry(levels: int = 3) -> TypeRegistry:
    """Type catalog: one type per tree position, paper field layout."""
    registry = TypeRegistry()
    for position in range(2 ** levels - 1):
        registry.define(
            f"T{position}",
            int_fields=("id", "level", "position", "payload"),
            ref_fields=("left", "right", "r2", "r3", "r4", "r5", "r6", "r7"),
        )
    return registry


def generate_acob(
    n_complex_objects: int,
    levels: int = 3,
    sharing: float = 0.0,
    shared_position: Optional[int] = None,
    seed: int = 7,
) -> ACOBDatabase:
    """Generate ``n_complex_objects`` binary-tree complex objects.

    ``sharing`` is the paper's Section 6.4 ratio of shared objects to
    sharing objects ("100 objects sharing 5 sub-objects exhibit .05
    sharing"): a pool of ``round(n * sharing)`` shared leaf objects is
    created at ``shared_position`` (default: the last leaf), and every
    complex object's reference at that position points into the pool
    instead of a private leaf.
    """
    if n_complex_objects <= 0:
        raise ReproError("need at least one complex object")
    if levels <= 0:
        raise ReproError("need at least one tree level")
    if not 0.0 <= sharing <= 1.0:
        raise ReproError("sharing must be in [0, 1]")
    positions = 2 ** levels - 1
    if shared_position is None:
        shared_position = positions - 1
    first_leaf = 2 ** (levels - 1) - 1
    if sharing > 0.0 and not first_leaf <= shared_position < positions:
        raise ReproError(
            f"shared_position {shared_position} is not a leaf position"
        )

    rng = random.Random(seed)
    registry = make_registry(levels)
    builder = GraphBuilder(registry)
    database = ACOBDatabase(
        registry=registry, complex_objects=[], levels=levels
    )

    shared_pool: List[ObjectDef] = []
    if sharing > 0.0:
        pool_size = max(1, round(n_complex_objects * sharing))
        for _ in range(pool_size):
            obj = builder.new_object(
                f"T{shared_position}",
                ints={
                    "id": -1,
                    "level": levels - 1,
                    "position": shared_position,
                    "payload": rng.randrange(PAYLOAD_RANGE),
                },
            )
            builder.mark_shared(obj)
            shared_pool.append(obj)

    for index in range(n_complex_objects):
        payloads: Dict[int, int] = {}
        nodes: Dict[int, ObjectDef] = {}
        # Create nodes bottom-up so references are known when parents form.
        for position in reversed(range(positions)):
            if sharing > 0.0 and position == shared_position:
                continue  # the shared pool supplies this position
            # bit_length trick: positions 0; 1,2; 3..6 sit on levels 0; 1; 2.
            level = (position + 1).bit_length() - 1
            payload = rng.randrange(PAYLOAD_RANGE)
            payloads[position] = payload
            refs: Dict[str, Oid] = {}
            left, right = 2 * position + 1, 2 * position + 2
            if left < positions:
                refs["left"] = self_or_shared(
                    nodes, shared_pool, left, shared_position, sharing, rng
                )
            if right < positions:
                refs["right"] = self_or_shared(
                    nodes, shared_pool, right, shared_position, sharing, rng
                )
            nodes[position] = builder.new_object(
                f"T{position}",
                ints={
                    "id": index,
                    "level": level,
                    "position": position,
                    "payload": payload,
                },
                refs=refs,
            )
        builder.complex_object(
            nodes[0],
            [nodes[p] for p in sorted(nodes) if p != 0],
        )
        database.payloads.append(payloads)

    builder.validate()
    database.complex_objects = builder.complex_objects
    database.shared_pool = builder.shared_objects
    return database


def self_or_shared(
    nodes: Dict[int, ObjectDef],
    shared_pool: List[ObjectDef],
    position: int,
    shared_position: int,
    sharing: float,
    rng: random.Random,
) -> Oid:
    """Reference a private node, or a random pool member at the shared slot."""
    if sharing > 0.0 and position == shared_position:
        return rng.choice(shared_pool).oid
    return nodes[position].oid


def make_template(
    database: ACOBDatabase,
    sharing: float = 0.0,
    shared_position: Optional[int] = None,
    predicate_position: Optional[int] = None,
    predicate: Optional[Predicate] = None,
) -> Template:
    """Build the assembly template matching a generated database.

    ``sharing`` annotates the shared leaf's template node (Section 5's
    border-of-shared-components marker).  ``predicate_position`` hangs
    ``predicate`` on that tree position (Figure 16's selective
    assembly).
    """
    template = binary_tree_template(
        database.levels, left_slot=LEFT_SLOT, right_slot=RIGHT_SLOT
    )
    if sharing > 0.0:
        position = (
            database.positions - 1 if shared_position is None else shared_position
        )
        node = template.node(f"n{position}")
        node.shared = True
        node.sharing_degree = sharing
    if predicate_position is not None:
        if predicate is None:
            raise ReproError("predicate_position given without a predicate")
        template.node(f"n{predicate_position}").predicate = predicate
    return template.reannotate()


def payload_predicate(selectivity: float) -> Predicate:
    """``payload < selectivity * PAYLOAD_RANGE`` — true pass rate = selectivity."""
    if not 0.0 <= selectivity <= 1.0:
        raise ReproError("selectivity must be in [0, 1]")
    bound = int(selectivity * PAYLOAD_RANGE)
    return int_less_than(PAYLOAD_SLOT, bound, selectivity)
