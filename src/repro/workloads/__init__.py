"""Workload generators: the paper's benchmark DB and the Section 4 example."""

from repro.workloads.acob import (
    ACOBDatabase,
    PAYLOAD_RANGE,
    generate_acob,
    make_registry,
    make_template,
    payload_predicate,
)
from repro.workloads.bom import (
    BomDatabase,
    bom_template,
    generate_bom,
    rolled_up_cost,
)
from repro.workloads.hypermodel import (
    HyperModelDatabase,
    generate_hypermodel,
    hypermodel_template,
)
from repro.workloads.person import (
    PersonDatabase,
    generate_people,
    lives_close_to_father,
    person_template,
)
from repro.workloads.sharing import (
    SharingProfile,
    expected_fetches_with_sharing,
    expected_fetches_without_sharing,
    measure_sharing,
)

__all__ = [
    "ACOBDatabase",
    "BomDatabase",
    "HyperModelDatabase",
    "bom_template",
    "generate_bom",
    "rolled_up_cost",
    "PAYLOAD_RANGE",
    "PersonDatabase",
    "generate_hypermodel",
    "hypermodel_template",
    "SharingProfile",
    "expected_fetches_with_sharing",
    "expected_fetches_without_sharing",
    "generate_acob",
    "generate_people",
    "lives_close_to_father",
    "make_registry",
    "make_template",
    "measure_sharing",
    "payload_predicate",
    "person_template",
]
