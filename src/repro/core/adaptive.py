"""The adaptive scheduler: Section 7's "primary scheduling algorithm".

"Currently, assembly operates entirely with one scheduling algorithm.
Also, scheduling priorities based on shared sub-objects and predicates
have not been integrated into a single scheduling algorithm.  The
primary scheduling algorithm will be the elevator algorithm modified to
account for predicates, sharing and the buffer size." (Section 7)

:class:`AdaptiveElevatorScheduler` is that integration:

* **buffer awareness** — a reference whose target page is already
  resident in the buffer costs no disk seek at all; the base elevator
  orders it by page number anyway.  The adaptive scheduler serves
  resident-page references immediately (cost 0), which both saves seeks
  and resolves references before their pages can be evicted (the
  sharing-retention concern of Section 5).
* **predicate awareness** — the elevator breaks same-page ties toward
  the higher rejection probability; the adaptive scheduler goes
  further: a reference likely to *abort* its complex object is worth a
  bounded detour, because a successful abort retracts that object's
  remaining references entirely.  The detour budget is
  ``rejection x detour_pages``.

The result degrades exactly to the plain elevator when the template has
no predicates and the buffer has no relevant residents.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Callable, List, Optional, Tuple

from repro.core.schedulers import ReferenceScheduler, UnresolvedReference
from repro.errors import SchedulerError

#: Default detour budget, in pages, granted to a certain rejector
#: (rejection = 1.0).  A reference with rejection r may be served up to
#: ``r * DETOUR_PAGES`` pages "too early" in the sweep.
DEFAULT_DETOUR_PAGES = 64


class AdaptiveElevatorScheduler(ReferenceScheduler):
    """Elevator scheduling integrated with predicates, sharing, buffer.

    Parameters
    ----------
    head_fn:
        Current disk-head position (as for the plain elevator).
    resident_fn:
        Predicate telling whether a page is currently buffered; wired
        to ``BufferManager.is_resident`` by the assembly operator.
    detour_pages:
        Seek distance a certain rejector is allowed to cost above the
        sweep-optimal choice.  0 disables predicate-driven detours.
    """

    name = "adaptive"

    def __init__(
        self,
        head_fn: Optional[Callable[[], int]] = None,
        resident_fn: Optional[Callable[[int], bool]] = None,
        detour_pages: int = DEFAULT_DETOUR_PAGES,
    ) -> None:
        super().__init__()
        if detour_pages < 0:
            raise SchedulerError("detour_pages must be non-negative")
        self._head_fn = head_fn if head_fn is not None else (lambda: 0)
        self._resident_fn = resident_fn if resident_fn is not None else (
            lambda _page: False
        )
        self._detour = detour_pages
        self._entries: List[Tuple[int, float, int, UnresolvedReference]] = []
        self._direction = 1
        #: references served for free because their page was resident.
        self.resident_hits = 0
        #: references served out of sweep order to chase a rejection.
        self.detours = 0

    # -- pool maintenance ---------------------------------------------------

    def add(self, ref: UnresolvedReference) -> None:
        self.ops += 1
        insort(self._entries, (ref.page_id, -ref.rejection, ref.seq, ref))

    def __len__(self) -> int:
        return len(self._entries)

    def remove_owner(self, owner: int) -> List[UnresolvedReference]:
        removed = [e[3] for e in self._entries if e[3].owner == owner]
        if removed:
            self.ops += len(self._entries)
            self._entries = [
                e for e in self._entries if e[3].owner != owner
            ]
        return removed

    # -- selection ---------------------------------------------------------------

    def pop(self) -> UnresolvedReference:
        self.require_nonempty()
        self.ops += 1
        index = self._pick()
        _page, _rej, _seq, ref = self._entries.pop(index)
        return ref

    def _pick(self) -> int:
        head = self._head_fn()

        # 1. Buffer awareness: any resident-page reference is free.
        for index, (page, _rej, _seq, _ref) in enumerate(self._entries):
            if self._resident_fn(page):
                self.resident_hits += 1
                return index

        # 2. The sweep-optimal (plain elevator) candidate.
        base = self._scan_index(head)
        if self._detour == 0:
            return base
        base_distance = abs(self._entries[base][0] - head)

        # 3. Predicate awareness: a likelier rejector may pre-empt the
        #    sweep choice if its extra distance fits its detour budget.
        best = base
        best_rejection = self._entries[base][3].rejection
        for index, (page, _rej, _seq, ref) in enumerate(self._entries):
            if ref.rejection <= best_rejection:
                continue
            extra = abs(page - head) - base_distance
            if extra <= ref.rejection * self._detour:
                best = index
                best_rejection = ref.rejection
        if best != base:
            self.detours += 1
        return best

    def _scan_index(self, head: int) -> int:
        split = bisect_left(
            self._entries, (head, float("-inf"), -1, None)  # type: ignore[arg-type]
        )
        if self._direction > 0:
            if split < len(self._entries):
                return split
            self._direction = -1
            return len(self._entries) - 1
        if split > 0:
            return split - 1
        self._direction = 1
        return 0
