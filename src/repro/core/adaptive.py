"""The adaptive scheduler: Section 7's "primary scheduling algorithm".

"Currently, assembly operates entirely with one scheduling algorithm.
Also, scheduling priorities based on shared sub-objects and predicates
have not been integrated into a single scheduling algorithm.  The
primary scheduling algorithm will be the elevator algorithm modified to
account for predicates, sharing and the buffer size." (Section 7)

:class:`AdaptiveElevatorScheduler` is that integration:

* **buffer awareness** — a reference whose target page is already
  resident in the buffer costs no disk seek at all; the base elevator
  orders it by page number anyway.  The adaptive scheduler serves
  resident-page references immediately (cost 0), which both saves seeks
  and resolves references before their pages can be evicted (the
  sharing-retention concern of Section 5).
* **predicate awareness** — the elevator breaks same-page ties toward
  the higher rejection probability; the adaptive scheduler goes
  further: a reference likely to *abort* its complex object is worth a
  bounded detour, because a successful abort retracts that object's
  remaining references entirely.  The detour budget is
  ``rejection x detour_pages``.

The result degrades exactly to the plain elevator when the template has
no predicates and the buffer has no relevant residents.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.schedulers import (
    ReferenceScheduler,
    SweepPool,
    UnresolvedReference,
)
from repro.errors import SchedulerError

#: Default detour budget, in pages, granted to a certain rejector
#: (rejection = 1.0).  A reference with rejection r may be served up to
#: ``r * DETOUR_PAGES`` pages "too early" in the sweep.
DEFAULT_DETOUR_PAGES = 64


class AdaptiveElevatorScheduler(ReferenceScheduler):
    """Elevator scheduling integrated with predicates, sharing, buffer.

    Parameters
    ----------
    head_fn:
        Current disk-head position (as for the plain elevator).
    resident_fn:
        Predicate telling whether a page is currently buffered; wired
        to ``BufferManager.is_resident`` by the assembly operator.
    detour_pages:
        Seek distance a certain rejector is allowed to cost above the
        sweep-optimal choice.  0 disables predicate-driven detours.
    """

    name = "adaptive"

    def __init__(
        self,
        head_fn: Optional[Callable[[], int]] = None,
        resident_fn: Optional[Callable[[int], bool]] = None,
        detour_pages: int = DEFAULT_DETOUR_PAGES,
    ) -> None:
        super().__init__()
        if detour_pages < 0:
            raise SchedulerError("detour_pages must be non-negative")
        self._head_fn = head_fn if head_fn is not None else (lambda: 0)
        self._resident_fn = resident_fn if resident_fn is not None else (
            lambda _page: False
        )
        self._detour = detour_pages
        self._pool = SweepPool()
        self._direction = 1
        #: references served for free because their page was resident.
        self.resident_hits = 0
        #: references served out of sweep order to chase a rejection.
        self.detours = 0

    # -- pool maintenance ---------------------------------------------------

    def add(self, ref: UnresolvedReference) -> None:
        self.ops += 1
        self._pool.add(ref)

    def __len__(self) -> int:
        return len(self._pool)

    def remove_owner(self, owner: int) -> List[UnresolvedReference]:
        removed = self._pool.remove_owner(owner)
        self.ops += len(removed)
        return removed

    # -- selection ---------------------------------------------------------------

    def pop(self) -> UnresolvedReference:
        self.require_nonempty()
        self.ops += 1
        ref = self._pick()
        self._pool.remove_ref(ref)
        return ref

    def _pick(self) -> UnresolvedReference:
        head = self._head_fn()

        # 1. Buffer awareness: any resident-page reference is free.
        for page, _rej, _seq, ref in self._pool.live_entries():
            if self._resident_fn(page):
                self.resident_hits += 1
                return ref

        # 2. The sweep-optimal (plain elevator) candidate.
        entry, self._direction = self._pool.peek_next(head, self._direction)
        base_ref = entry[3]
        if self._detour == 0:
            return base_ref
        base_distance = abs(entry[0] - head)

        # 3. Predicate awareness: a likelier rejector may pre-empt the
        #    sweep choice if its extra distance fits its detour budget.
        best = base_ref
        best_rejection = base_ref.rejection
        for page, _rej, _seq, ref in self._pool.live_entries():
            if ref.rejection <= best_rejection:
                continue
            extra = abs(page - head) - base_distance
            if extra <= ref.rejection * self._detour:
                best = ref
                best_rejection = ref.rejection
        if best is not base_ref:
            self.detours += 1
        return best

    def pop_batch(self, max_pages: int = 1) -> List[UnresolvedReference]:
        """Batched pop: the chosen reference's whole page (plus its
        contiguous continuation in the sweep direction) comes along.

        The anchor is picked by the same buffer/predicate-aware logic
        as :meth:`pop`, so batching changes *grouping*, not priorities.
        A resident-page anchor batches only its own page — those
        references are free, and extending the run would charge seeks
        the buffer already paid.
        """
        self.require_nonempty()
        self.ops += 1
        anchor = self._pick()
        was_resident = self._resident_fn(anchor.page_id)
        self._pool.remove_ref(anchor)
        refs = [anchor]
        refs.extend(self._pool.take_page(anchor.page_id))
        if not was_resident:
            pages = 1
            while pages < max_pages:
                next_page = anchor.page_id + self._direction * pages
                if next_page < 0:
                    break
                more = self._pool.take_page(next_page)
                if not more:
                    break
                refs.extend(more)
                pages += 1
        return refs
