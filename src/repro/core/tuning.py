"""Window/buffer tuning (Section 7 future work).

"We suspect that for a given buffer size the window size can be tuned
so that performance is maximized."  This module provides both halves of
that suspicion:

* :func:`pin_bound` / :func:`max_window_for_buffer` — the analytic
  side, inverting Section 6.3.3's buffer-cost formula
  ``6*(W-1) + 7`` pages pinned for W in-flight complex objects (the
  general form uses the template's node count: a complex object of N
  components pins at most N-1 pages while incomplete plus N for the one
  being finished);
* :func:`tune_window` — the empirical side: probe a handful of window
  sizes against a workload factory and report the best measured seek
  distance per read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.template import Template
from repro.errors import AssemblyError


def pin_bound(window_size: int, template: Optional[Template] = None) -> int:
    """Maximum pages pinned by a window of ``window_size`` objects.

    With the paper's 7-object template this is ``6*(W-1) + 7``
    (Section 6.3.3's "301 pages" at W = 50).  For other templates the
    same argument gives ``(N-1)*(W-1) + N`` where N is the template's
    node count: W−1 objects may be one fetch short of complete while
    the W-th is fully fetched.
    """
    if window_size <= 0:
        raise AssemblyError("window_size must be positive")
    nodes = 7 if template is None else template.finalize().node_count
    return (nodes - 1) * (window_size - 1) + nodes


def max_window_for_buffer(
    buffer_capacity: int,
    template: Optional[Template] = None,
    headroom: int = 8,
) -> int:
    """Largest window whose pin bound fits the buffer.

    ``headroom`` reserves frames for non-assembly traffic (index pages,
    the page being read, ...).  Returns at least 1; a buffer too small
    even for one complex object raises, because assembly could deadlock
    on pinning.
    """
    if buffer_capacity <= 0:
        raise AssemblyError("buffer_capacity must be positive")
    nodes = 7 if template is None else template.finalize().node_count
    usable = buffer_capacity - headroom
    if usable < nodes:
        raise AssemblyError(
            f"buffer of {buffer_capacity} frames cannot hold even one "
            f"{nodes}-component complex object (+{headroom} headroom)"
        )
    # (nodes-1)*(W-1) + nodes <= usable
    return max(1, (usable - nodes) // (nodes - 1) + 1)


@dataclass
class TuningResult:
    """Outcome of an empirical window probe."""

    best_window: int
    best_avg_seek: float
    #: every probed (window, avg_seek) pair, in probe order.
    probes: List[Tuple[int, float]]


def tune_window(
    run: Callable[[int], float],
    buffer_capacity: Optional[int] = None,
    template: Optional[Template] = None,
    candidates: Sequence[int] = (1, 10, 25, 50, 100, 200),
) -> TuningResult:
    """Probe window sizes and return the best measured one.

    ``run(window_size)`` must execute the workload and return its
    average seek distance per read (the harness's
    :func:`~repro.bench.harness.run_experiment` composes directly).
    Candidates exceeding the buffer's pin bound are skipped — they
    would deadlock, not merely run slowly.
    """
    probes: List[Tuple[int, float]] = []
    ceiling = None
    if buffer_capacity is not None:
        ceiling = max_window_for_buffer(buffer_capacity, template)
    for window in candidates:
        if window <= 0:
            raise AssemblyError("window candidates must be positive")
        if ceiling is not None and window > ceiling:
            continue
        probes.append((window, run(window)))
    if not probes:
        raise AssemblyError(
            "no window candidate fits the buffer; lower the candidates "
            "or raise the buffer capacity"
        )
    best_window, best_seek = min(probes, key=lambda p: p[1])
    return TuningResult(
        best_window=best_window, best_avg_seek=best_seek, probes=probes
    )
