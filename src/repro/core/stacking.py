"""Stacked assembly: combining bottom-up and top-down assembly (Fig. 17).

"Bottom-up and top-down assembly is achieved by 'stacking' assembly
operators … Assembly1 assembles all B and D objects according to the
template and passes them to Assembly2.  Assembly2 completes the
assembly by fetching A and C objects and linking them with the
sub-objects already assembled by Assembly1." (Section 7)

:class:`StackedAssembly` wires two assembly operators exactly that way:
the lower operator runs over the sub-object roots with a sub-template
(bottom-up), its outputs are registered as *pre-assembled* components,
and the upper operator assembles the full template top-down, linking
instead of fetching whenever it reaches a pre-assembled border.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.core.assembled import AssembledComplexObject, AssembledObject
from repro.core.assembly import Assembly
from repro.core.schedulers import ReferenceScheduler
from repro.core.template import Template
from repro.errors import AssemblyError
from repro.storage.oid import Oid
from repro.storage.store import ObjectStore
from repro.volcano.iterator import Row, VolcanoIterator


class StackedAssembly(VolcanoIterator):
    """Two stacked assembly operators: bottom-up below, top-down above.

    Parameters
    ----------
    lower_source / lower_template:
        Input roots and template of the bottom-up stage (the B/D
        sub-objects of Figure 17).
    upper_source / upper_template:
        Root OIDs and full template of the top-down stage.
    window_size / scheduler:
        Applied to both stages (per-stage overrides via
        ``lower_kwargs`` / ``upper_kwargs``).

    The lower stage is a pipeline breaker: it runs to completion during
    ``open`` so its outputs can serve as the upper stage's
    pre-assembled component table.  This mirrors the paper's
    description, where Assembly1 "assembles all B and D objects … and
    passes them to Assembly2".
    """

    def __init__(
        self,
        lower_source: VolcanoIterator,
        lower_template: Template,
        upper_source: VolcanoIterator,
        upper_template: Template,
        store: ObjectStore,
        window_size: int = 1,
        scheduler: Union[str, ReferenceScheduler] = "elevator",
        lower_kwargs: Optional[dict] = None,
        upper_kwargs: Optional[dict] = None,
    ) -> None:
        super().__init__()
        self._store = store
        lower_kwargs = dict(lower_kwargs or {})
        lower_kwargs.setdefault("window_size", window_size)
        lower_kwargs.setdefault("scheduler", scheduler)
        self._lower = Assembly(
            lower_source, store, lower_template, **lower_kwargs
        )
        self._upper_source = upper_source
        self._upper_template = upper_template
        self._upper_kwargs = dict(upper_kwargs or {})
        self._upper_kwargs.setdefault("window_size", window_size)
        self._upper_kwargs.setdefault("scheduler", scheduler)
        self._upper: Optional[Assembly] = None
        self.preassembled: Dict[Oid, AssembledObject] = {}

    @property
    def lower(self) -> Assembly:
        """The bottom-up stage (for stats inspection)."""
        return self._lower

    @property
    def upper(self) -> Assembly:
        """The top-down stage (available after ``open``)."""
        if self._upper is None:
            raise AssemblyError("stacked assembly has not been opened")
        return self._upper

    def _open(self) -> None:
        self.preassembled = {}
        self._lower.open()
        while True:
            sub = self._lower.next()
            if sub is None:
                break
            if not isinstance(sub, AssembledComplexObject):
                raise AssemblyError(
                    f"lower assembly emitted {type(sub).__name__}"
                )
            self.preassembled[sub.root_oid] = sub.root
        self._lower.close()
        self._upper = Assembly(
            self._upper_source,
            self._store,
            self._upper_template,
            preassembled=self.preassembled,
            **self._upper_kwargs,
        )
        self._upper.open()

    def _next(self) -> Optional[Row]:
        assert self._upper is not None
        return self._upper.next()

    def _close(self) -> None:
        if self._upper is not None and self._upper.is_open:
            self._upper.close()
