"""Execution tracing for the assembly operator.

A :class:`AssemblyTracer` records every observable decision the
operator makes — admissions, fetches, shared/pre-assembled links,
deferrals, predicate outcomes, aborts, emissions — as a flat list of
:class:`TraceEvent` records.  Uses:

* debugging a template against real data ("why was this never
  fetched?"),
* order-sensitive tests (the paper's Figure 5 walkthrough is literally
  a trace),
* teaching: `summarize` renders the assembly of a window the way the
  paper's Figure 5 does.

Tracing is strictly observational; enabling it never changes fetch
order or results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.storage.oid import Oid

#: Event kinds, in rough lifecycle order.
ADMITTED = "admitted"
FETCHED = "fetched"
LINKED_SHARED = "linked-shared"
LINKED_PREASSEMBLED = "linked-preassembled"
DEFERRED = "deferred"
ACTIVATED = "activated"
PREDICATE_PASSED = "predicate-passed"
PREDICATE_FAILED = "predicate-failed"
FAULT = "fault"
DEGRADED = "degraded"
ABORTED = "aborted"
EMITTED = "emitted"

KINDS = (
    ADMITTED,
    FETCHED,
    LINKED_SHARED,
    LINKED_PREASSEMBLED,
    DEFERRED,
    ACTIVATED,
    PREDICATE_PASSED,
    PREDICATE_FAILED,
    FAULT,
    DEGRADED,
    ABORTED,
    EMITTED,
)


@dataclass(frozen=True)
class TraceEvent:
    """One observed assembly decision."""

    #: one of the module-level kind constants.
    kind: str
    #: window serial of the owning complex object.
    owner: int
    #: the object (or reference target) the event concerns.
    oid: Oid
    #: template label involved ("" for whole-object events).
    label: str = ""
    #: physical page, where meaningful (-1 otherwise).
    page_id: int = -1
    #: simulated-clock stamp, when the tracer has a clock (-1.0 means
    #: unstamped — the historical, purely ordinal trace).
    at: float = -1.0

    def __str__(self) -> str:
        where = f" @page {self.page_id}" if self.page_id >= 0 else ""
        what = f" [{self.label}]" if self.label else ""
        when = f" t={self.at:g}" if self.at >= 0 else ""
        return f"#{self.owner} {self.kind}: {self.oid}{what}{where}{when}"


class AssemblyTracer:
    """Collects :class:`TraceEvent` records during one execution.

    ``clock_fn`` optionally stamps each event with the simulated clock
    (the event engine's milliseconds, the service's resolution counter
    — never wall time), putting the Figure 5 walkthrough on the same
    time axis as the observability layer's spans.  Without a clock the
    trace is purely ordinal, exactly as before: events carry ``at=-1``
    and render without a time column, so stamping is strictly additive.
    """

    def __init__(self, clock_fn: Optional[Callable[[], float]] = None) -> None:
        self.events: List[TraceEvent] = []
        self.clock_fn = clock_fn

    # -- recording (called by the assembly operator) -------------------------

    def record(
        self,
        kind: str,
        owner: int,
        oid: Oid,
        label: str = "",
        page_id: int = -1,
    ) -> None:
        """Append one event (kind must be a known constant)."""
        if kind not in KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}")
        at = -1.0 if self.clock_fn is None else float(self.clock_fn())
        self.events.append(
            TraceEvent(
                kind=kind, owner=owner, oid=oid, label=label, page_id=page_id,
                at=at,
            )
        )

    def clear(self) -> None:
        """Drop all recorded events (each ``open`` starts clean)."""
        self.events = []

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All events of one kind, in occurrence order."""
        return [e for e in self.events if e.kind == kind]

    def fetch_order(self) -> List[Oid]:
        """OIDs in the order the operator fetched them from disk."""
        return [e.oid for e in self.events if e.kind == FETCHED]

    def resolution_order(self) -> List[Oid]:
        """OIDs in resolution order (fetches and links together)."""
        kinds = (FETCHED, LINKED_SHARED, LINKED_PREASSEMBLED)
        return [e.oid for e in self.events if e.kind in kinds]

    def per_owner(self, owner: int) -> List[TraceEvent]:
        """The life of one complex object."""
        return [e for e in self.events if e.owner == owner]

    def counts(self) -> Dict[str, int]:
        """Event counts by kind (only kinds that occurred)."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def summarize(self, max_events: Optional[int] = None) -> str:
        """Multi-line rendering in Figure 5 style."""
        shown = self.events if max_events is None else self.events[:max_events]
        lines = [str(event) for event in shown]
        if max_events is not None and len(self.events) > max_events:
            lines.append(f"... {len(self.events) - max_events} more events")
        return "\n".join(lines)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)
