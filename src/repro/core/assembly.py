"""The assembly operator (paper, Sections 4–5).

``Assembly`` is a Volcano iterator whose input yields root OIDs (or
partially assembled objects) and whose output is pointer-swizzled
:class:`~repro.core.assembled.AssembledComplexObject` rows.  It is a
physical operator "that does not correspond to any complex object
algebra operator … It enforces the physical constraint: 'The portion of
the complex object needed to carry out the query is entirely in
memory.'"

Mechanics, all from the paper:

* **Sliding window** — up to ``window_size`` complex objects are under
  assembly at once; as soon as one completes and is passed up, another
  is admitted (Section 4, "delayed or sliding assembly operator").
* **Reference pool + scheduler** — unresolved references from every
  in-window object compete; the scheduler (depth-first, breadth-first,
  or elevator) picks which to resolve next (Section 6.2).
* **Pointer swizzling** — each fetched object is linked to its parent
  by memory pointer (Section 4).
* **Shared components** — with sharing statistics enabled, a
  shared-component table guarantees a shared sub-object is "not loaded
  twice … into two different memory locations", and its page stays
  pinned (reference-counted) while any in-window object references it
  (Section 5).
* **Selective assembly** — template predicates abort an object as
  early as possible; references that cannot influence a predicate are
  deferred until every predicate has passed, so rejected objects cost
  the minimum number of fetches (Sections 4, 6.5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.obs.spans import Span, SpanRecorder

from repro.core.assembled import AssembledComplexObject, AssembledObject
from repro.core import trace
from repro.core.component_iterator import ChildReference, ComponentIterator
from repro.core.schedulers import (
    ReferenceScheduler,
    UnresolvedReference,
    make_scheduler,
)
from repro.core.template import Template
from repro.core.window import ComplexObjectState, Window
from repro.errors import (
    AssemblyError,
    BufferFullError,
    FaultError,
    RetriesExhaustedError,
)
from repro.storage.faults import DeviceHealthTracker, RetryPolicy
from repro.storage.oid import Oid
from repro.storage.store import ObjectStore
from repro.volcano.iterator import Row, VolcanoIterator

#: Graceful-degradation modes for faulted fetches.
FAIL_FAST = "fail_fast"
SKIP_OBJECT = "skip_object"
PARTIAL = "partial"
ON_FAULT_MODES = (FAIL_FAST, SKIP_OBJECT, PARTIAL)


@dataclass
class AssemblyStats:
    """Counters for one execution of the assembly operator."""

    emitted: int = 0
    aborted: int = 0
    fetches: int = 0
    shared_links: int = 0
    refs_resolved: int = 0
    deferred_scheduled: int = 0
    peak_pinned_pages: int = 0
    scheduler_ops: int = 0
    #: shared-table entries dropped under a capacity bound.
    shared_evictions: int = 0
    #: multi-page prefetches issued for coalesced batches.
    prefetch_batches: int = 0
    #: pages covered by those prefetches.
    prefetch_pages: int = 0
    #: injected faults observed on this operator's fetch path.
    fault_events: int = 0
    #: faulted fetches retried under the retry policy.
    fault_retries: int = 0
    #: simulated milliseconds of retry backoff charged.
    fault_backoff_ms: float = 0.0
    #: complex objects dropped whole under ``skip_object`` degradation
    #: (each also counts in ``aborted``).
    fault_skipped: int = 0
    #: template subtrees dropped under ``partial`` degradation.
    missing_components: int = 0
    #: degraded complex objects emitted (``partial`` mode).
    degraded_emitted: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for benchmark tables."""
        return {
            "emitted": self.emitted,
            "aborted": self.aborted,
            "fetches": self.fetches,
            "shared_links": self.shared_links,
            "refs_resolved": self.refs_resolved,
            "deferred_scheduled": self.deferred_scheduled,
            "peak_pinned_pages": self.peak_pinned_pages,
            "scheduler_ops": self.scheduler_ops,
            "shared_evictions": self.shared_evictions,
            "prefetch_batches": self.prefetch_batches,
            "prefetch_pages": self.prefetch_pages,
            "fault_events": self.fault_events,
            "fault_retries": self.fault_retries,
            "fault_backoff_ms": self.fault_backoff_ms,
            "fault_skipped": self.fault_skipped,
            "missing_components": self.missing_components,
            "degraded_emitted": self.degraded_emitted,
        }


class _SharedEntry:
    """A shared component held in the shared-component table."""

    __slots__ = ("assembled", "refcount", "page_id", "pinned")

    def __init__(self, assembled: AssembledObject, page_id: int) -> None:
        self.assembled = assembled
        self.refcount = 0
        self.page_id = page_id
        self.pinned = False


class Assembly(VolcanoIterator):
    """Set-oriented retrieval and assembly of complex objects.

    Parameters
    ----------
    source:
        Volcano iterator yielding root :class:`Oid` values (or
        pre-built :class:`AssembledObject` / complex objects, for
        stacked assembly inputs).
    store:
        The object store to fetch components from.
    template:
        The structural/statistical map of the complex objects.
    window_size:
        W, the number of complex objects assembled simultaneously.
        ``window_size=1`` with the depth-first scheduler is the paper's
        naive, object-at-a-time baseline.
    scheduler:
        Scheduler name (``"depth-first"``, ``"breadth-first"``,
        ``"elevator"``) or a ready :class:`ReferenceScheduler`.
    use_sharing_statistics:
        Honour the template's ``shared`` borders with the
        shared-component table and reference-counted pinning
        (Section 6.4).  Off = every reference is fetched independently.
    selective:
        Defer references that cannot decide a predicate until all
        predicates passed (Section 6.5).  Default: on exactly when the
        template has predicates.
    preassembled:
        OID → :class:`AssembledObject` map of sub-objects assembled by
        a lower assembly operator (Figure 17's stacking).
    pin_pages:
        Keep the pages of in-window components fixed in the buffer
        (the paper's buffer-space cost of windows, Section 6.3.3).
    batch_pages:
        Maximum distinct pages per scheduler batch.  1 (default)
        reproduces the paper's one-reference-at-a-time loop exactly;
        ≥ 2 pops sweep batches and prefetches their pages with one
        coalesced disk operation, so every same-page reference and
        every contiguous run costs a single physical read (§4's
        "single disk access per page", generalized to runs).
    retry_policy:
        How to retry fetches that raise a
        :class:`~repro.errors.FaultError` (a
        :class:`~repro.storage.faults.FaultInjector` is attached to
        the disk).  ``None`` (default) means no retries: the first
        fault goes straight to the ``on_fault`` mode.  Backoff is
        simulated time, charged through the injector.
    on_fault:
        What to do once retries (if any) are exhausted.
        ``"fail_fast"`` (default) re-raises; ``"skip_object"`` aborts
        the owning complex object (counted in ``fault_skipped`` and
        ``aborted``); ``"partial"`` drops just the faulted subtree and
        emits the object marked ``degraded`` — except for root
        references and predicate-bearing subtrees, which cannot decide
        membership and degrade to ``skip_object``.
    health:
        Optional :class:`~repro.storage.faults.DeviceHealthTracker`
        fed with per-device success/failure outcomes (a device server
        shares one tracker across its queries' operators).
    spans:
        Optional :class:`~repro.obs.spans.SpanRecorder`.  When given,
        the operator records an ``assembly`` span over its open/close
        lifetime, a (sampled) ``window-slot`` span per admitted complex
        object, ``fetch`` spans around disk fetches, ``batch`` spans
        around coalesced prefetches, and ``retry-backoff`` events —
        strictly observationally: results, fetch order, disk stats and
        every counter are bit-identical with or without a recorder.
    parent_span:
        Span to parent the operator's ``assembly`` span under (the
        service parents it under the owning request's span).
    """

    def __init__(
        self,
        source: VolcanoIterator,
        store: ObjectStore,
        template: Template,
        window_size: int = 1,
        scheduler: Union[str, ReferenceScheduler] = "elevator",
        use_sharing_statistics: bool = True,
        selective: Optional[bool] = None,
        preassembled: Optional[Dict[Oid, AssembledObject]] = None,
        pin_pages: bool = True,
        tracer: Optional["AssemblyTracer"] = None,
        shared_table_capacity: Optional[int] = None,
        batch_pages: int = 1,
        retry_policy: Optional[RetryPolicy] = None,
        on_fault: str = FAIL_FAST,
        health: Optional[DeviceHealthTracker] = None,
        spans: Optional["SpanRecorder"] = None,
        parent_span: Optional["Span"] = None,
    ) -> None:
        super().__init__()
        self._source = source
        self._store = store
        self._template = template.finalize()
        self._component_iter = ComponentIterator(self._template)
        if window_size <= 0:
            raise AssemblyError("window_size must be positive")
        self._window_size = window_size
        self._scheduler_spec = scheduler
        self._use_sharing = use_sharing_statistics
        self._selective = (
            self._template.has_predicates() if selective is None else selective
        )
        self._preassembled = dict(preassembled or {})
        self._pin_pages = pin_pages
        self._tracer = tracer
        if shared_table_capacity is not None and shared_table_capacity <= 0:
            raise AssemblyError("shared_table_capacity must be positive")
        self._shared_capacity = shared_table_capacity
        if batch_pages <= 0:
            raise AssemblyError("batch_pages must be positive")
        self._batch_pages = batch_pages
        if on_fault not in ON_FAULT_MODES:
            raise AssemblyError(
                f"on_fault must be one of {ON_FAULT_MODES}, got {on_fault!r}"
            )
        self._retry_policy = retry_policy
        self._on_fault = on_fault
        self._health = health
        self._spans = spans
        self._parent_span = parent_span
        self._assembly_span: Optional["Span"] = None
        self._slot_spans: Dict[int, "Span"] = {}

        self._scheduler: Optional[ReferenceScheduler] = None
        self._window: Optional[Window] = None
        self._shared: Dict[Oid, _SharedEntry] = {}
        self._emit: Deque[AssembledComplexObject] = deque()
        self._seq = 0
        self._source_done = False
        self.stats = AssemblyStats()

    # -- protocol ------------------------------------------------------------

    def _open(self) -> None:
        if isinstance(self._scheduler_spec, ReferenceScheduler):
            self._scheduler = self._scheduler_spec
        else:
            self._scheduler = make_scheduler(
                self._scheduler_spec,
                head_fn=lambda: self._store.disk.head_position,
                resident_fn=self._store.buffer.is_resident,
            )
        self._window = Window(self._window_size)
        self._shared = {}
        self._emit = deque()
        self._seq = 0
        self._source_done = False
        self.stats = AssemblyStats()
        if self._tracer is not None:
            self._tracer.clear()
        if self._spans is not None:
            scheduler_name = (
                self._scheduler_spec
                if isinstance(self._scheduler_spec, str)
                else type(self._scheduler_spec).__name__
            )
            self._assembly_span = self._spans.begin(
                "assembly",
                parent=self._parent_span,
                kind="assembly",
                window=self._window_size,
                scheduler=scheduler_name,
            )
            self._slot_spans = {}
        self._source.open()
        self._fill_window()

    def _next(self) -> Optional[AssembledComplexObject]:
        assert self._scheduler is not None and self._window is not None
        while True:
            if self._emit:
                return self._emit.popleft()
            if len(self._scheduler) == 0:
                if self._window.is_empty:
                    self._fill_window()
                    if self._window.is_empty and not self._emit:
                        if self._source_done:
                            return None
                        continue
                    continue
                # Window occupied but nothing scheduled: only legal if
                # some state holds deferred refs that must now run
                # (e.g. a predicate subtree turned out to be absent).
                self._flush_stuck_deferred()
                continue
            if self._batch_pages > 1:
                self._resolve_batch(
                    self._scheduler.pop_batch(self._batch_pages)
                )
                continue
            ref = self._scheduler.pop()
            if ref.owner not in self._window:
                continue  # owner aborted after this ref was queued
            self._resolve(ref)

    def _close(self) -> None:
        assert self._window is not None
        # Retract anything this operator still has queued: under an
        # externally owned (shared) scheduler the pool outlives the
        # operator, and stale references must not leak into it.
        if self._scheduler is not None:
            for state in self._window.states():
                self._scheduler.remove_owner(state.serial)
        # Release every pin still held (incomplete objects, shared pages).
        for state in self._window.states():
            self._release_pins(state)
        for oid, entry in self._shared.items():
            if entry.pinned:
                self._store.buffer.unfix(entry.page_id)
                entry.pinned = False
        self._shared = {}
        self.stats.scheduler_ops = (
            self._scheduler.ops if self._scheduler is not None else 0
        )
        if self._spans is not None:
            for span in self._slot_spans.values():
                self._spans.end(span, outcome="unfinished")
            self._slot_spans = {}
            if self._assembly_span is not None:
                self._spans.end(
                    self._assembly_span,
                    emitted=self.stats.emitted,
                    aborted=self.stats.aborted,
                    fetches=self.stats.fetches,
                )
                self._assembly_span = None
        self._source.close()

    # -- external draining (device-server hooks) -----------------------------

    @property
    def scheduler(self) -> ReferenceScheduler:
        """The live reference pool (external drivers only).

        Completion-driven drivers (:class:`repro.core.multidevice.
        PipelinedAssembly`) pop per-device batches from this pool and
        hand the resolved references back through
        :meth:`resolve_external_batch`.  Only available while open.
        """
        if self._scheduler is None:
            raise AssemblyError("scheduler is only bound while open")
        return self._scheduler

    @property
    def store(self) -> ObjectStore:
        """The object store this operator fetches from."""
        return self._store

    def resolve_external(self, ref: UnresolvedReference) -> None:
        """Resolve one reference popped by an external driver.

        The assembly service's device server owns the scheduler pool
        for every registered query; it pops the globally best reference
        and hands it back to the owning operator through this hook.
        References whose owner aborted after queuing are ignored, the
        same way :meth:`next`'s internal loop skips them.
        """
        if not self.is_open:
            raise AssemblyError("resolve_external() on a non-open operator")
        assert self._window is not None
        if ref.owner not in self._window:
            return
        self._resolve(ref)

    def resolve_external_batch(
        self, refs: List[UnresolvedReference]
    ) -> None:
        """Resolve one completed I/O batch popped by an external driver.

        The event-driven drivers pop a per-device sweep batch, issue
        its pages asynchronously, and call this on completion.  Owner
        liveness is re-checked before every reference — exactly like
        the internal :meth:`_resolve_batch` loop — so a predicate abort
        mid-batch retracts its in-flight siblings.  The caller owns any
        prefetch pins (each reference then resolves as a buffer hit).
        """
        if not self.is_open:
            raise AssemblyError(
                "resolve_external_batch() on a non-open operator"
            )
        assert self._window is not None
        for ref in refs:
            if ref.owner not in self._window:
                continue  # owner aborted after this ref was queued
            self._resolve(ref)

    def drain_emitted(self) -> List[AssembledComplexObject]:
        """Hand over every completed complex object buffered so far.

        External drivers use this instead of :meth:`next`: resolution
        via :meth:`resolve_external` appends completions to the emit
        buffer, and the driver collects them between steps.
        """
        drained = list(self._emit)
        self._emit.clear()
        return drained

    def is_drained(self) -> bool:
        """Nothing left to do or hand out?

        True once the source is exhausted, the window is empty, and no
        completed object is waiting in the emit buffer — the external
        driver's termination test.
        """
        assert self._window is not None
        return self._source_done and self._window.is_empty and not self._emit

    def release_stuck_deferred(self) -> bool:
        """Reschedule deferred references of stalled in-window objects.

        External drivers call this when the operator's pool ran dry but
        :meth:`is_drained` is still false; returns whether anything was
        released.  Raises :class:`AssemblyError` if the operator is
        truly stalled (window occupied, nothing deferred), mirroring
        the internal safety valve.
        """
        if not self.is_open:
            raise AssemblyError("release_stuck_deferred() on a non-open operator")
        self._flush_stuck_deferred()
        return True

    # -- window management ---------------------------------------------------------

    def _fill_window(self) -> None:
        assert self._window is not None
        while not self._window.is_full and not self._source_done:
            row = self._source.next()
            if row is None:
                self._source_done = True
                return
            self._admit(row)

    def _admit(self, row: Row) -> None:
        assert self._window is not None
        if isinstance(row, Oid):
            self._admit_root_oid(row)
        elif isinstance(row, AssembledComplexObject):
            self._admit_partial(row.root)
        elif isinstance(row, AssembledObject):
            self._admit_partial(row)
        else:
            raise AssemblyError(
                f"assembly input must be Oid or assembled objects, "
                f"got {type(row).__name__}"
            )

    def _admit_root_oid(self, oid: Oid) -> None:
        assert self._window is not None and self._scheduler is not None
        state = self._window.admit(
            oid,
            total_nodes=self._template.node_count,
            total_predicates=self._template.predicate_count,
        )
        root_node = self._template.root
        ref = UnresolvedReference(
            oid=oid,
            page_id=self._store.page_of(oid),
            owner=state.serial,
            node=root_node,
            parent=None,
            parent_slot=-1,
            seq=self._next_seq(),
            rejection=self._component_iter.subtree_rejection(root_node),
            is_root=True,
        )
        if self._tracer is not None:
            self._tracer.record(
                trace.ADMITTED, state.serial, oid,
                label=root_node.label, page_id=ref.page_id,
            )
        self._begin_slot_span(state.serial, oid)
        self._scheduler.add(ref)

    def _admit_partial(self, root: AssembledObject) -> None:
        """Admit a partially assembled complex object (Section 4).

        The component iterator finds every unresolved reference within
        the partial structure; outstanding counters start from what is
        still missing.  Predicates on already-materialized nodes are
        (re-)evaluated immediately.
        """
        assert self._window is not None and self._scheduler is not None
        refs = self._component_iter.expand_partial(root)
        missing_nodes = sum(ref.node.subtree_nodes for ref in refs)
        missing_predicates = sum(ref.node.subtree_predicates for ref in refs)
        state = self._window.admit(
            root.oid,
            total_nodes=missing_nodes,
            total_predicates=missing_predicates,
        )
        state.root = root
        self._begin_slot_span(state.serial, root.oid)
        # Predicates on nodes the partial input already materialized.
        if not self._evaluate_materialized_predicates(state, root):
            return
        self._schedule_children(state, refs)
        if state.is_complete():
            self._complete(state)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- span bookkeeping ----------------------------------------------------

    def _begin_slot_span(self, serial: int, oid: Oid) -> None:
        """Open a (sampled) ``window-slot`` span for one admitted object."""
        if self._spans is None:
            return
        self._slot_spans[serial] = self._spans.begin(
            "window-slot",
            parent=self._assembly_span,
            kind="window-slot",
            sample=True,
            serial=serial,
            oid=str(oid),
        )

    def _end_slot_span(self, serial: int, outcome: str, **attrs: object) -> None:
        """Close one object's ``window-slot`` span with its outcome."""
        if self._spans is None:
            return
        span = self._slot_spans.pop(serial, None)
        if span is not None:
            self._spans.end(span, outcome=outcome, **attrs)

    # -- resolution --------------------------------------------------------------------

    def _resolve(self, ref: UnresolvedReference) -> None:
        assert self._window is not None
        state = self._window.get(ref.owner)
        self.stats.refs_resolved += 1

        if self._use_sharing and ref.oid in self._shared:
            self._link_shared(state, ref)
        elif ref.oid in self._preassembled:
            self._link_preassembled(state, ref)
        else:
            self._fetch_and_expand(state, ref)

        if ref.owner in self._window and state.is_complete():
            self._complete(state)

    def needs_fetch(self, ref: UnresolvedReference) -> bool:
        """Would resolving ``ref`` right now take the disk path?

        False for references whose owner already aborted and for those
        the shared-component table or a preassembled input satisfies
        without I/O.  Batch drivers (this operator's own
        :meth:`_resolve_batch` and the service device server) use this
        to decide which pages are worth prefetching.
        """
        assert self._window is not None
        if ref.owner not in self._window:
            return False
        if self._use_sharing and ref.oid in self._shared:
            return False
        if ref.oid in self._preassembled:
            return False
        return True

    def _resolve_batch(self, refs: List[UnresolvedReference]) -> None:
        """Resolve one scheduler batch behind a coalesced prefetch.

        The distinct pages the batch will fetch are pinned with one
        :meth:`BufferManager.fix_many` (one physical read per
        contiguous run) before the per-reference resolution runs, so
        every coalesced reference is a buffer hit.  Resolution itself
        is unchanged — including the owner-liveness re-check before
        each reference, so a predicate abort mid-batch retracts its
        siblings exactly as in the unbatched loop.  If the batch does
        not fit the pin bound the prefetch is skipped and the batch
        degrades to per-reference fetching.
        """
        fetch_pages: List[int] = []
        seen_pages = set()
        for ref in refs:
            if not self.needs_fetch(ref):
                continue
            page_id = self._store.page_of(ref.oid)
            if page_id not in seen_pages:
                seen_pages.add(page_id)
                fetch_pages.append(page_id)
        prefetched: List[int] = []
        batch_span = None
        if self._spans is not None and fetch_pages:
            batch_span = self._spans.begin(
                "batch",
                parent=self._assembly_span,
                kind="batch",
                refs=len(refs),
                pages=len(fetch_pages),
            )
        if len(fetch_pages) > 1:
            try:
                self._store.buffer.fix_many(fetch_pages)
                prefetched = fetch_pages
                self.stats.prefetch_batches += 1
                self.stats.prefetch_pages += len(fetch_pages)
            except BufferFullError:
                prefetched = []
            except FaultError:
                # An injected fault hit the coalesced prefetch: fall
                # back to per-reference fetching, where the retry
                # policy and degradation modes apply per object.
                self.stats.fault_events += 1
                prefetched = []
        try:
            for ref in refs:
                assert self._window is not None
                if ref.owner not in self._window:
                    continue  # owner aborted earlier in this batch
                self._resolve(ref)
        finally:
            for page_id in prefetched:
                self._store.buffer.unfix(page_id)
            if batch_span is not None:
                self._spans.end(batch_span, prefetched=len(prefetched))

    def _link_shared(
        self, state: ComplexObjectState, ref: UnresolvedReference
    ) -> None:
        """Satisfy a reference from the shared-component table: no fetch."""
        entry = self._shared[ref.oid]
        entry.refcount += 1
        state.shared_oids.append(ref.oid)
        self._attach(state, ref, entry.assembled)
        state.shared_links += 1
        self.stats.shared_links += 1
        if self._tracer is not None:
            self._tracer.record(
                trace.LINKED_SHARED, state.serial, ref.oid,
                label=ref.node.label, page_id=entry.page_id,
            )
        # The whole shared subtree is materialized; its predicates
        # passed when it was first assembled (else its first owner
        # would have aborted and the entry never created).
        state.outstanding_nodes -= ref.node.subtree_nodes
        self._note_predicates_resolved(state, ref.node.subtree_predicates)

    def _link_preassembled(
        self, state: ComplexObjectState, ref: UnresolvedReference
    ) -> None:
        """Attach a sub-object assembled by a lower operator (Figure 17)."""
        sub = self._preassembled[ref.oid]
        self._attach(state, ref, sub)
        if self._tracer is not None:
            self._tracer.record(
                trace.LINKED_PREASSEMBLED, state.serial, ref.oid,
                label=ref.node.label,
            )
        remaining = self._component_iter.expand_partial(sub)
        # Of ref.node's template subtree, everything except what the
        # remaining references will bring in is already materialized.
        still_missing_nodes = sum(r.node.subtree_nodes for r in remaining)
        still_missing_preds = sum(r.node.subtree_predicates for r in remaining)
        state.outstanding_nodes -= ref.node.subtree_nodes - still_missing_nodes
        if not self._evaluate_materialized_predicates(state, sub):
            return
        self._schedule_children(state, remaining)
        self._note_predicates_resolved(
            state, ref.node.subtree_predicates - still_missing_preds
        )

    def _fault_now(self) -> float:
        """Current fault-clock time (0.0 with no injector attached)."""
        injector = self._store.disk.fault_injector
        return injector.now if injector is not None else 0.0

    def _fetch_record(self, ref: UnresolvedReference):
        """Fetch one object, retrying faults under the retry policy.

        The fault-free path (no injector on the disk) is a plain fetch
        — zero bookkeeping, bit-identical behavior.  With an injector,
        every :class:`~repro.errors.FaultError` is recorded (stats,
        trace, health tracker) and retried while the policy allows,
        charging simulated backoff through the injector; exhaustion
        raises :class:`~repro.errors.RetriesExhaustedError` (or the
        original fault when no policy was given).
        """
        if self._pin_pages:
            fetch = self._store.fetch_pinned
        else:
            fetch = self._store.fetch
        injector = self._store.disk.fault_injector
        if injector is None:
            return fetch(ref.oid)
        policy = self._retry_policy
        attempt = 0
        while True:
            try:
                record = fetch(ref.oid)
            except FaultError as exc:
                self.stats.fault_events += 1
                device = getattr(exc, "device", 0)
                if self._health is not None:
                    self._health.record_failure(
                        device,
                        now=self._fault_now(),
                        retry_after=getattr(exc, "retry_after", None),
                    )
                if self._tracer is not None:
                    self._tracer.record(
                        trace.FAULT, ref.owner, ref.oid,
                        label=ref.node.label, page_id=ref.page_id,
                    )
                if self._spans is not None:
                    self._spans.event(
                        "retry-backoff",
                        parent=self._slot_spans.get(ref.owner),
                        kind="retry",
                        device=device,
                        oid=str(ref.oid),
                        attempt=attempt,
                    )
                if policy is None:
                    raise
                if not policy.should_retry(attempt):
                    raise RetriesExhaustedError(
                        f"fetch of {ref.oid} still failing after "
                        f"{attempt} retries",
                        page_id=ref.page_id,
                        device=device,
                        retries=attempt,
                    ) from exc
                backoff = policy.backoff_ms(
                    attempt, getattr(self._store.disk, "cost_model", None)
                )
                injector.charge_backoff(backoff)
                self.stats.fault_retries += 1
                self.stats.fault_backoff_ms += backoff
                attempt += 1
            else:
                if self._health is not None:
                    device_fn = getattr(self._store.disk, "device_of", None)
                    self._health.record_success(
                        device_fn(ref.page_id) if device_fn else 0
                    )
                return record

    def _degrade(
        self,
        state: ComplexObjectState,
        ref: UnresolvedReference,
        exc: FaultError,
    ) -> None:
        """Apply the ``on_fault`` mode to a fetch that gave up.

        ``partial`` drops just the faulted subtree — but only for
        non-root, predicate-free subtrees; anything that could decide
        the object's membership (the root itself, or a subtree holding
        predicates) falls back to ``skip_object``, because emitting the
        object without evaluating its predicates would be wrong rather
        than merely incomplete.
        """
        if self._on_fault == FAIL_FAST:
            raise exc
        partial_ok = (
            self._on_fault == PARTIAL
            and ref.parent is not None
            and ref.node.subtree_predicates == 0
        )
        if not partial_ok:
            self.stats.fault_skipped += 1
            self._abort(state)
            return
        state.degraded = True
        state.missing_components += 1
        state.outstanding_nodes -= ref.node.subtree_nodes
        self.stats.missing_components += 1
        if self._tracer is not None:
            self._tracer.record(
                trace.DEGRADED, state.serial, ref.oid,
                label=ref.node.label, page_id=ref.page_id,
            )

    def _fetch_and_expand(
        self, state: ComplexObjectState, ref: UnresolvedReference
    ) -> None:
        """The disk path: fetch, pin, swizzle, expand, test predicate."""
        fetch_span = None
        if self._spans is not None:
            device_fn = getattr(self._store.disk, "device_of", None)
            fetch_span = self._spans.begin(
                "fetch",
                parent=self._slot_spans.get(state.serial),
                kind="fetch",
                device=device_fn(ref.page_id) if device_fn else 0,
                oid=str(ref.oid),
                page=ref.page_id,
            )
        try:
            record = self._fetch_record(ref)
        except FaultError as exc:
            if fetch_span is not None:
                self._spans.end(fetch_span, outcome="faulted")
            self._degrade(state, ref, exc)
            return
        if fetch_span is not None:
            self._spans.end(fetch_span, outcome="fetched")
        # Objects never move once registered, so the scheduler's page id
        # is still the object's physical page — no directory re-lookup.
        page_id = ref.page_id
        state.fetches += 1
        self.stats.fetches += 1
        self.stats.peak_pinned_pages = max(
            self.stats.peak_pinned_pages, self._store.buffer.pinned_pages
        )
        if self._tracer is not None:
            self._tracer.record(
                trace.FETCHED, state.serial, ref.oid,
                label=ref.node.label, page_id=page_id,
            )

        assembled, children = self._component_iter.materialize(
            ref.oid, ref.node, record
        )

        share_this = self._use_sharing and ref.node.shared
        if self._pin_pages:
            if share_this:
                # The shared entry owns the pin; released when the last
                # in-window referrer lets go (Section 5, reason two).
                pass
            else:
                state.pinned_pages.append(page_id)

        # Early abort on this node's predicate (Section 6.5).
        if ref.node.predicate is not None:
            passed = ref.node.predicate.evaluate(record)
            if self._tracer is not None:
                self._tracer.record(
                    trace.PREDICATE_PASSED if passed else trace.PREDICATE_FAILED,
                    state.serial, ref.oid, label=ref.node.label,
                )
            if not passed:
                if self._pin_pages and share_this:
                    # Pin not yet handed to a shared entry: release it.
                    self._store.buffer.unfix(page_id)
                self._abort(state)
                return

        if share_this:
            entry = _SharedEntry(assembled, page_id)
            entry.refcount = 1
            entry.pinned = self._pin_pages
            assembled.shared_in = True
            self._shared[ref.oid] = entry
            state.shared_oids.append(ref.oid)
            self._trim_shared_table()

        self._attach(state, ref, assembled)
        state.outstanding_nodes -= 1

        missing_nodes, missing_predicates = (
            self._component_iter.missing_subtree_counts(assembled, children)
        )
        state.outstanding_nodes -= missing_nodes
        predicates_newly_resolved = missing_predicates
        if ref.node.predicate is not None:
            predicates_newly_resolved += 1

        self._schedule_children(state, children)
        self._note_predicates_resolved(state, predicates_newly_resolved)

    def _trim_shared_table(self) -> None:
        """Drop unreferenced entries beyond the capacity bound.

        "After a component is no longer referenced, it is subject to
        replacement" (Section 5): entries with a zero reference count
        are evictable, oldest first; re-referencing an evicted
        component simply fetches it again.  In-use entries are never
        dropped, so the table may transiently exceed the bound when
        every entry is live.
        """
        if self._shared_capacity is None:
            return
        if len(self._shared) <= self._shared_capacity:
            return
        for oid in list(self._shared):
            if len(self._shared) <= self._shared_capacity:
                return
            entry = self._shared[oid]
            if entry.refcount == 0:
                del self._shared[oid]
                self.stats.shared_evictions += 1

    def _attach(
        self,
        state: ComplexObjectState,
        ref: UnresolvedReference,
        assembled: AssembledObject,
    ) -> None:
        """Swizzle the fetched object into its parent (or set the root)."""
        if ref.parent is None:
            state.root = assembled
        else:
            ref.parent.swizzle(ref.parent_slot, assembled)

    def _schedule_children(
        self, state: ComplexObjectState, children: List[ChildReference]
    ) -> None:
        """Queue child references, deferring predicate-blind ones.

        While the owner still has undecided predicates, references
        whose subtree cannot reject the object are withheld — "first
        fetching objects needed to evaluate the predicate"
        (Section 6.5).
        """
        assert self._scheduler is not None
        now: List[UnresolvedReference] = []
        gate = self._selective and state.gate_references()
        page_of = self._store.page_of
        subtree_rejection = self._component_iter.subtree_rejection
        serial = state.serial
        for child in children:
            node = child.node
            self._seq += 1
            unresolved = UnresolvedReference(
                oid=child.oid,
                page_id=page_of(child.oid),
                owner=serial,
                node=node,
                parent=child.parent,
                parent_slot=child.slot,
                seq=self._seq,
                rejection=subtree_rejection(node),
            )
            if gate and child.node.subtree_predicates == 0:
                state.deferred.append(unresolved)
                if self._tracer is not None:
                    self._tracer.record(
                        trace.DEFERRED, state.serial, child.oid,
                        label=child.node.label,
                    )
            else:
                now.append(unresolved)
        if now:
            self._scheduler.add_siblings(now)

    def _note_predicates_resolved(
        self, state: ComplexObjectState, count: int
    ) -> None:
        """Decrement pending predicates; release deferred refs at zero."""
        if count <= 0:
            return
        state.pending_predicates -= count
        if state.pending_predicates < 0:
            raise AssemblyError(
                f"complex object {state.serial}: predicate accounting "
                f"went negative"
            )
        if state.pending_predicates == 0 and state.deferred:
            assert self._scheduler is not None
            released = state.deferred
            state.deferred = []
            self.stats.deferred_scheduled += len(released)
            if self._tracer is not None:
                for ref in released:
                    self._tracer.record(
                        trace.ACTIVATED, state.serial, ref.oid,
                        label=ref.node.label, page_id=ref.page_id,
                    )
            self._scheduler.add_siblings(released)

    def _evaluate_materialized_predicates(
        self, state: ComplexObjectState, root: AssembledObject
    ) -> bool:
        """Run predicates on already-assembled nodes; abort on failure."""
        from repro.storage.record import ObjectRecord

        for obj in root.walk():
            predicate = obj.node.predicate
            if predicate is None:
                continue
            record = ObjectRecord(
                ints=list(obj.ints),
                refs=list(obj.ref_oids),
                fmt=self._store.fmt,
            )
            if not predicate.evaluate(record):
                self._abort(state)
                return False
        return True

    def _flush_stuck_deferred(self) -> None:
        """Safety valve: release deferred refs of stalled states.

        With correct accounting this never fires; it exists so a
        template/data mismatch degrades to eager assembly instead of an
        infinite loop, and it raises if there is truly nothing to do.
        """
        assert self._scheduler is not None and self._window is not None
        released_any = False
        for state in self._window.states():
            if state.deferred:
                refs = state.deferred
                state.deferred = []
                self._scheduler.add_siblings(refs)
                released_any = True
        if not released_any:
            raise AssemblyError(
                "assembly stalled: window occupied but no references "
                "pending (template does not match the data?)"
            )

    # -- retirement ----------------------------------------------------------------------

    def _release_pins(self, state: ComplexObjectState) -> None:
        if self._pin_pages:
            for page_id in state.pinned_pages:
                self._store.buffer.unfix(page_id)
        state.pinned_pages = []
        for oid in state.shared_oids:
            entry = self._shared.get(oid)
            if entry is None:
                continue
            entry.refcount -= 1
            if entry.refcount == 0 and entry.pinned:
                # Last in-window referrer gone: page becomes evictable
                # (the assembled object itself stays in the table).
                self._store.buffer.unfix(entry.page_id)
                entry.pinned = False
        state.shared_oids = []

    def _complete(self, state: ComplexObjectState) -> None:
        assert self._window is not None
        if state.root is None:
            raise AssemblyError(
                f"complex object {state.serial} completed without a root"
            )
        self._window.retire(state.serial)
        self._release_pins(state)
        self._emit.append(
            AssembledComplexObject(
                root=state.root,
                serial=state.serial,
                fetches=state.fetches,
                shared_links=state.shared_links,
                degraded=state.degraded,
                missing_components=state.missing_components,
            )
        )
        self.stats.emitted += 1
        if state.degraded:
            self.stats.degraded_emitted += 1
        if self._tracer is not None:
            self._tracer.record(
                trace.EMITTED, state.serial, state.root.oid
            )
        self._end_slot_span(
            state.serial, "emitted",
            fetches=state.fetches, shared_links=state.shared_links,
        )
        self._fill_window()

    def _abort(self, state: ComplexObjectState) -> None:
        """Predicate failure: retract the object with minimal waste."""
        assert self._window is not None and self._scheduler is not None
        state.aborted = True
        self._scheduler.remove_owner(state.serial)
        state.deferred = []
        self._window.retire(state.serial)
        self._release_pins(state)
        self.stats.aborted += 1
        if self._tracer is not None:
            self._tracer.record(trace.ABORTED, state.serial, state.root_oid)
        self._end_slot_span(state.serial, "aborted", fetches=state.fetches)
        self._fill_window()
