"""Selection predicates with selectivity annotations.

The assembly operator "is able to retrieve complex objects selectively,
based on arbitrary selection predicates" (Section 1), and the template
carries "predicates with predicate selectivity" (Section 5).  The
selectivity estimate drives scheduling: "the component with the higher
rejection probability should be retrieved first".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import TemplateError
from repro.storage.record import ObjectRecord


@dataclass
class Predicate:
    """A boolean test on one storage object, with an estimated pass rate.

    ``fn`` receives the decoded :class:`ObjectRecord`; ``selectivity``
    estimates the fraction of objects that *pass* (0.0–1.0).
    """

    name: str
    fn: Callable[[ObjectRecord], bool] = field(repr=False)
    selectivity: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.selectivity <= 1.0:
            raise TemplateError(
                f"predicate {self.name!r}: selectivity must be in [0, 1], "
                f"got {self.selectivity}"
            )

    @property
    def rejection_probability(self) -> float:
        """Estimated probability an object fails — the scheduling hint."""
        return 1.0 - self.selectivity

    def evaluate(self, record: ObjectRecord) -> bool:
        """Run the test against one object."""
        return bool(self.fn(record))

    def __str__(self) -> str:
        return f"{self.name} (sel={self.selectivity:.2f})"


def int_field_predicate(
    name: str, slot: int, test: Callable[[int], bool], selectivity: float
) -> Predicate:
    """Predicate over one integer slot of the record."""
    if slot < 0:
        raise TemplateError("slot must be non-negative")

    def fn(record: ObjectRecord) -> bool:
        return test(record.ints[slot])

    return Predicate(name=name, fn=fn, selectivity=selectivity)


def int_less_than(slot: int, bound: int, selectivity: float) -> Predicate:
    """``record.ints[slot] < bound`` — the workhorse of Figure 16."""
    return int_field_predicate(
        f"ints[{slot}] < {bound}", slot, lambda v: v < bound, selectivity
    )


def conjunction(predicates: "list[Predicate]") -> Predicate:
    """AND several predicates on the same component into one.

    Selectivities multiply (the usual independence assumption), and the
    combined test short-circuits.  The optimizer uses this when a query
    places several conditions on one template component.
    """
    if not predicates:
        raise TemplateError("conjunction of no predicates")
    if len(predicates) == 1:
        return predicates[0]
    name = " AND ".join(p.name for p in predicates)
    selectivity = 1.0
    for predicate in predicates:
        selectivity *= predicate.selectivity

    def fn(record: ObjectRecord) -> bool:
        return all(p.evaluate(record) for p in predicates)

    return Predicate(name=name, fn=fn, selectivity=selectivity)


def disjunction(predicates: "list[Predicate]") -> Predicate:
    """OR several predicates on the same component into one.

    Pass rates combine as ``1 - prod(1 - s_i)`` (independence), and the
    combined test short-circuits on the first pass.
    """
    if not predicates:
        raise TemplateError("disjunction of no predicates")
    if len(predicates) == 1:
        return predicates[0]
    name = " OR ".join(p.name for p in predicates)
    miss = 1.0
    for predicate in predicates:
        miss *= 1.0 - predicate.selectivity

    def fn(record: ObjectRecord) -> bool:
        return any(p.evaluate(record) for p in predicates)

    return Predicate(name=name, fn=fn, selectivity=1.0 - miss)


def always_true(selectivity: float = 1.0) -> Predicate:
    """A pass-everything predicate (useful to exercise the machinery)."""
    return Predicate(name="true", fn=lambda _record: True, selectivity=selectivity)


def always_false() -> Predicate:
    """A reject-everything predicate."""
    return Predicate(name="false", fn=lambda _record: False, selectivity=0.0)
