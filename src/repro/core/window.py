"""Sliding-window bookkeeping for the assembly operator.

"Instead of working on a single complex object, the assembly operator
works on a window, of size W, of complex objects.  As soon as any one
of these complex objects becomes assembled and passed up the query
tree, the operator retrieves another one to work on." (Section 4)

A :class:`ComplexObjectState` tracks one in-window complex object:
outstanding references, pending predicates, deferred (predicate-gated)
references, and the pages pinned on its behalf.  :class:`Window` is the
fixed-capacity collection of those states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.assembled import AssembledObject
from repro.core.schedulers import UnresolvedReference
from repro.errors import WindowError
from repro.storage.oid import Oid


@dataclass
class ComplexObjectState:
    """Assembly progress of one complex object in the window."""

    serial: int
    root_oid: Oid
    #: swizzled root, set once the root object is fetched.
    root: Optional[AssembledObject] = None
    #: template nodes not yet materialized (counts down to 0).
    outstanding_nodes: int = 0
    #: predicates not yet decided (counts down to 0).
    pending_predicates: int = 0
    #: references withheld until every predicate has passed
    #: (Section 6.5: fetch predicate-deciding objects first).
    deferred: List[UnresolvedReference] = field(default_factory=list)
    #: pages pinned for this object's private components.
    pinned_pages: List[int] = field(default_factory=list)
    #: shared components this object links to (for refcount release).
    shared_oids: List[Oid] = field(default_factory=list)
    fetches: int = 0
    shared_links: int = 0
    aborted: bool = False
    #: a faulted subtree was dropped under the ``partial`` degradation
    #: mode; the emitted object is marked accordingly.
    degraded: bool = False
    #: template subtrees lost to faults (0 unless ``degraded``).
    missing_components: int = 0

    def is_complete(self) -> bool:
        """All template-reachable components materialized?"""
        return (
            not self.aborted
            and self.root is not None
            and self.outstanding_nodes == 0
        )

    def gate_references(self) -> bool:
        """Should non-predicate references be deferred right now?"""
        return self.pending_predicates > 0


class Window:
    """Fixed-capacity set of in-progress complex objects."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise WindowError("window capacity must be positive")
        self.capacity = capacity
        self._states: Dict[int, ComplexObjectState] = {}
        self._next_serial = 0
        #: high-water mark of simultaneously open complex objects.
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, serial: int) -> bool:
        return serial in self._states

    @property
    def is_full(self) -> bool:
        """No room for another complex object?"""
        return len(self._states) >= self.capacity

    @property
    def is_empty(self) -> bool:
        """Nothing under assembly?"""
        return not self._states

    def admit(self, root_oid: Oid, total_nodes: int, total_predicates: int) -> ComplexObjectState:
        """Open a new complex object; returns its state."""
        if self.is_full:
            raise WindowError(
                f"window of {self.capacity} complex objects is full"
            )
        serial = self._next_serial
        self._next_serial += 1
        state = ComplexObjectState(
            serial=serial,
            root_oid=root_oid,
            outstanding_nodes=total_nodes,
            pending_predicates=total_predicates,
        )
        self._states[serial] = state
        self.peak_occupancy = max(self.peak_occupancy, len(self._states))
        return state

    def get(self, serial: int) -> ComplexObjectState:
        """State of an in-window complex object."""
        try:
            return self._states[serial]
        except KeyError:
            raise WindowError(f"complex object {serial} is not in the window") from None

    def retire(self, serial: int) -> ComplexObjectState:
        """Remove a completed or aborted complex object."""
        try:
            return self._states.pop(serial)
        except KeyError:
            raise WindowError(f"complex object {serial} is not in the window") from None

    def states(self) -> List[ComplexObjectState]:
        """All in-window states (admission order)."""
        return list(self._states.values())
