"""Parallel assembly and the exclusive-device problem (Section 7).

"The effectiveness of elevator scheduling depends on exclusive control
of the physical device.  When multiple assembly operators (or parallel
invocations of a single assembly operator) are executing, each assumes
sole control of the device and independently issues object fetch
requests.  Therefore, there are two or more independent queues of
requests for the device and the exclusive control assumption no longer
holds. … A possible solution could involve a server-per-device
architecture.  Each server would maintain a queue of requests and
would fetch objects on behalf of one or more assembly operators."

This module makes both sides of that argument executable:

* :class:`InterleavedAssemblies` — K assembly operators over disjoint
  root partitions, each with its **own** scheduler queue, stepped
  round-robin against one shared disk.  Each operator believes it owns
  the device; their elevator sweeps fight, and seek distance degrades
  as K grows.
* :class:`DeviceServerAssembly` — the server-per-device fix: the same
  K partitions, but every operator's references flow into **one**
  scheduler queue (the device server's), so a single global sweep
  serves all partitions.  Structurally this is one assembly operator
  whose window is partitioned, which is exactly why the paper expects
  partitioned parallel assembly to scale.

Both are ordinary Volcano iterators, so the ablation benchmark can
compare them like-for-like.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.core.assembled import AssembledComplexObject
from repro.core.assembly import Assembly
from repro.core.template import Template
from repro.errors import AssemblyError
from repro.storage.oid import Oid
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource, Row, VolcanoIterator


def _partition_roots(roots: List[Oid], n_partitions: int) -> List[List[Oid]]:
    if n_partitions <= 0:
        raise AssemblyError("need at least one partition")
    partitions: List[List[Oid]] = [[] for _ in range(n_partitions)]
    for index, root in enumerate(roots):
        partitions[index % n_partitions].append(root)
    return partitions


class InterleavedAssemblies(VolcanoIterator):
    """K independent assembly operators contending for one device.

    Each partition gets its own :class:`Assembly` (own window, own
    scheduler queue).  ``next`` serves the partitions round-robin, one
    emitted complex object per turn — the demand pattern a parallel
    query plan would generate.  Because each operator's elevator plans
    sweeps without seeing the others' fetches, the disk head is yanked
    between K uncoordinated sweep positions.
    """

    def __init__(
        self,
        roots: List[Oid],
        store: ObjectStore,
        template: Template,
        n_partitions: int,
        window_size: int = 50,
        scheduler: str = "elevator",
        **assembly_kwargs,
    ) -> None:
        super().__init__()
        self._partitions = _partition_roots(list(roots), n_partitions)
        per_window = max(1, window_size // n_partitions)
        self.operators: List[Assembly] = [
            Assembly(
                ListSource(part),
                store,
                template,
                window_size=per_window,
                scheduler=scheduler,
                **assembly_kwargs,
            )
            for part in self._partitions
        ]
        self._alive: List[bool] = []
        self._turn = 0

    def _open(self) -> None:
        for operator in self.operators:
            operator.open()
        self._alive = [True] * len(self.operators)
        self._turn = 0

    def _next(self) -> Optional[Row]:
        remaining = sum(self._alive)
        while remaining:
            index = self._turn % len(self.operators)
            self._turn += 1
            if not self._alive[index]:
                continue
            row = self.operators[index].next()
            if row is None:
                self._alive[index] = False
                remaining -= 1
                continue
            return row
        return None

    def _close(self) -> None:
        for operator, alive in zip(self.operators, self._alive):
            if operator.is_open:
                operator.close()

    def total_fetches(self) -> int:
        """Object fetches across all partitions."""
        return sum(op.stats.fetches for op in self.operators)


class DeviceServerAssembly(VolcanoIterator):
    """The server-per-device fix: one request queue for all partitions.

    The device server owns the only scheduler; partitioned input is
    admitted into one (larger) shared window.  Implemented as a single
    assembly operator fed by the round-robin-merged root stream —
    faithful to the paper's observation that the server architecture
    re-establishes the exclusive-control assumption.
    """

    def __init__(
        self,
        roots: List[Oid],
        store: ObjectStore,
        template: Template,
        n_partitions: int,
        window_size: int = 50,
        scheduler: str = "elevator",
        **assembly_kwargs,
    ) -> None:
        super().__init__()
        partitions = _partition_roots(list(roots), n_partitions)
        merged: List[Oid] = []
        cursors = [0] * len(partitions)
        exhausted = 0
        while exhausted < len(partitions):
            exhausted = 0
            for index, part in enumerate(partitions):
                if cursors[index] < len(part):
                    merged.append(part[cursors[index]])
                    cursors[index] += 1
                else:
                    exhausted += 1
        self.operator = Assembly(
            ListSource(merged),
            store,
            template,
            window_size=window_size,
            scheduler=scheduler,
            **assembly_kwargs,
        )

    def _open(self) -> None:
        self.operator.open()

    def _next(self) -> Optional[Row]:
        return self.operator.next()

    def _close(self) -> None:
        if self.operator.is_open:
            self.operator.close()

    def total_fetches(self) -> int:
        """Object fetches through the device server."""
        return self.operator.stats.fetches
