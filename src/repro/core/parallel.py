"""Parallel assembly and the exclusive-device problem (Section 7).

"The effectiveness of elevator scheduling depends on exclusive control
of the physical device.  When multiple assembly operators (or parallel
invocations of a single assembly operator) are executing, each assumes
sole control of the device and independently issues object fetch
requests.  Therefore, there are two or more independent queues of
requests for the device and the exclusive control assumption no longer
holds. … A possible solution could involve a server-per-device
architecture.  Each server would maintain a queue of requests and
would fetch objects on behalf of one or more assembly operators."

This module makes both sides of that argument executable:

* :class:`InterleavedAssemblies` — K assembly operators over disjoint
  root partitions, each with its **own** scheduler queue, stepped
  round-robin against one shared disk.  Each operator believes it owns
  the device; their elevator sweeps fight, and seek distance degrades
  as K grows.
* :class:`DeviceServerAssembly` — the server-per-device fix: the same
  K partitions, each registered as a client query of the real device
  server (:class:`repro.service.device_server.DeviceServer`), so every
  operator's references flow into **one** global elevator sweep.

Both are ordinary Volcano iterators, so the ablation benchmark can
compare them like-for-like.  ``DeviceServerAssembly`` is kept as a
thin wrapper (with the deprecated
:data:`PartitionedDeviceServerAssembly` alias) for the static
K-partition use case; the service layer in :mod:`repro.service` is the
full multi-client generalization — dynamic query registry, admission
control, result caching.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # import cycle: the service builds on core
    from repro.service.device_server import DeviceServer

from repro.core.assembly import Assembly
from repro.core.template import Template
from repro.errors import AssemblyError
from repro.storage.oid import Oid
from repro.storage.store import ObjectStore
from repro.volcano.iterator import ListSource, Row, VolcanoIterator


def _partition_roots(roots: List[Oid], n_partitions: int) -> List[List[Oid]]:
    if n_partitions <= 0:
        raise AssemblyError("need at least one partition")
    partitions: List[List[Oid]] = [[] for _ in range(n_partitions)]
    for index, root in enumerate(roots):
        partitions[index % n_partitions].append(root)
    return partitions


class InterleavedAssemblies(VolcanoIterator):
    """K independent assembly operators contending for one device.

    Each partition gets its own :class:`Assembly` (own window, own
    scheduler queue).  ``next`` serves the partitions round-robin, one
    emitted complex object per turn — the demand pattern a parallel
    query plan would generate.  Because each operator's elevator plans
    sweeps without seeing the others' fetches, the disk head is yanked
    between K uncoordinated sweep positions.
    """

    def __init__(
        self,
        roots: List[Oid],
        store: ObjectStore,
        template: Template,
        n_partitions: int,
        window_size: int = 50,
        scheduler: str = "elevator",
        **assembly_kwargs,
    ) -> None:
        super().__init__()
        self._partitions = _partition_roots(list(roots), n_partitions)
        per_window = max(1, window_size // n_partitions)
        self.operators: List[Assembly] = [
            Assembly(
                ListSource(part),
                store,
                template,
                window_size=per_window,
                scheduler=scheduler,
                **assembly_kwargs,
            )
            for part in self._partitions
        ]
        self._alive: List[bool] = []
        self._turn = 0

    def _open(self) -> None:
        for operator in self.operators:
            operator.open()
        self._alive = [True] * len(self.operators)
        self._turn = 0

    def _next(self) -> Optional[Row]:
        remaining = sum(self._alive)
        while remaining:
            index = self._turn % len(self.operators)
            self._turn += 1
            if not self._alive[index]:
                continue
            row = self.operators[index].next()
            if row is None:
                self._alive[index] = False
                remaining -= 1
                continue
            return row
        return None

    def _close(self) -> None:
        for operator, alive in zip(self.operators, self._alive):
            if operator.is_open:
                operator.close()

    def total_fetches(self) -> int:
        """Object fetches across all partitions."""
        return sum(op.stats.fetches for op in self.operators)


class DeviceServerAssembly(VolcanoIterator):
    """The server-per-device fix: one request queue for all partitions.

    Since the assembly service landed, this class is a thin wrapper
    over :class:`repro.service.device_server.DeviceServer` — the full
    dynamic multi-client realization of Section 7's sketch.  Each of
    the K partitions registers as one client query (window
    ``window_size // K``); all their references merge into the server's
    single global elevator sweep, re-establishing the exclusive-control
    assumption exactly as the paper predicts.  ``next`` emits completed
    objects round-robin across partitions.

    The original static K-partition class survives under this name (and
    the deprecated :data:`PartitionedDeviceServerAssembly` alias) so
    existing imports keep working; new code that wants live queries,
    admission control, or caching should use
    :class:`repro.service.server.AssemblyService` directly.
    """

    def __init__(
        self,
        roots: List[Oid],
        store: ObjectStore,
        template: Template,
        n_partitions: int,
        window_size: int = 50,
        scheduler: str = "elevator",
        batch_pages: int = 1,
        **assembly_kwargs,
    ) -> None:
        super().__init__()
        if scheduler != "elevator":
            raise AssemblyError(
                "the device server schedules with its global elevator; "
                f"per-partition scheduler {scheduler!r} is not supported"
            )
        self._partitions = _partition_roots(list(roots), n_partitions)
        self._store = store
        self._template = template
        self._per_window = max(1, window_size // n_partitions)
        # batch_pages drives the server's global sweep, not the client
        # operators (their proxy schedulers never pop).
        self._batch_pages = batch_pages
        self._assembly_kwargs = assembly_kwargs
        self._server: Optional["DeviceServer"] = None

    def _open(self) -> None:
        from repro.service.device_server import DeviceServer

        self._server = DeviceServer(
            self._store,
            starvation_bound=None,
            batch_pages=self._batch_pages,
        )
        for part in self._partitions:
            self._server.register(
                part,
                self._template,
                window_size=self._per_window,
                **self._assembly_kwargs,
            )

    def _next(self) -> Optional[Row]:
        assert self._server is not None
        while True:
            emitted = self._server.next_result()
            if emitted is not None:
                return emitted[1]
            if not self._server.step():
                return None

    def _close(self) -> None:
        # Release any pins still held by unfinished queries; the server
        # (and its per-query stats) stay readable until the next open.
        if self._server is not None:
            for query in self._server.active_queries():
                if query.assembly.is_open:
                    query.assembly.close()

    def total_fetches(self) -> int:
        """Object fetches through the device server."""
        if self._server is None:
            return 0
        return sum(
            query.stats.fetches
            for query in self._server.active_queries()
        )


#: Deprecated alias, kept so pre-service import sites keep working.
#: Use :class:`DeviceServerAssembly` (static partitions) or the full
#: :class:`repro.service.server.AssemblyService` (live clients).
PartitionedDeviceServerAssembly = DeviceServerAssembly
