"""In-memory, pointer-swizzled complex objects.

"To achieve quickly traversable memory-resident complex objects, all
object references (OIDs) are changed to memory pointers.  This
'pointer-swizzling' process results in a structure that can be scanned
without the need to consult an OID-to-memory-address mapping table."
(paper, Section 4)

An :class:`AssembledObject` is one storage object after assembly: its
integer state, its raw reference OIDs (for slots the template does not
follow), and — for template-followed slots — direct Python references
to the child :class:`AssembledObject`.  Traversal never touches the
OID directory again, which is the whole point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.template import TemplateNode
from repro.errors import AssemblyError
from repro.storage.oid import Oid
from repro.storage.record import ObjectRecord


class AssembledObject:
    """One storage object in memory, with swizzled child pointers."""

    __slots__ = ("oid", "node", "ints", "ref_oids", "children", "shared_in")

    def __init__(
        self, oid: Oid, node: TemplateNode, record: ObjectRecord
    ) -> None:
        self.oid = oid
        #: template node this object instantiates.
        self.node = node
        self.ints: Tuple[int, ...] = tuple(record.ints)
        #: raw reference state, exactly as stored.
        self.ref_oids: Tuple[Oid, ...] = tuple(record.refs)
        #: swizzled pointers, keyed by reference slot.
        self.children: Dict[int, "AssembledObject"] = {}
        #: True when this object came from the shared-component table.
        self.shared_in: bool = False

    def swizzle(self, slot: int, child: "AssembledObject") -> None:
        """Install the memory pointer for reference ``slot``."""
        if slot in self.children:
            raise AssemblyError(
                f"{self.oid}: slot {slot} already swizzled"
            )
        if not 0 <= slot < len(self.ref_oids):
            raise AssemblyError(f"{self.oid}: no reference slot {slot}")
        self.children[slot] = child

    def child(self, slot: int) -> Optional["AssembledObject"]:
        """The swizzled child on ``slot`` (None if absent or unfollowed)."""
        return self.children.get(slot)

    def follow(self, *slots: int) -> "AssembledObject":
        """Traverse a swizzled path; raises if any hop is missing."""
        here: AssembledObject = self
        for slot in slots:
            nxt = here.children.get(slot)
            if nxt is None:
                raise AssemblyError(
                    f"{here.oid}: slot {slot} is not swizzled"
                )
            here = nxt
        return here

    def walk(self) -> Iterator["AssembledObject"]:
        """Pre-order traversal via memory pointers only.

        Shared components reachable along several paths are yielded
        once per path; callers needing identity-unique visits can
        deduplicate on ``id(obj)``.
        """
        yield self
        for slot in sorted(self.children):
            yield from self.children[slot].walk()

    def count_objects(self) -> int:
        """Distinct objects (by identity) reachable from here."""
        seen = set()
        stack = [self]
        while stack:
            obj = stack.pop()
            if id(obj) in seen:
                continue
            seen.add(id(obj))
            stack.extend(obj.children.values())
        return len(seen)

    def find(self, label: str) -> Optional["AssembledObject"]:
        """First object (pre-order) whose template label matches."""
        for obj in self.walk():
            if obj.node.label == label:
                return obj
        return None

    def __repr__(self) -> str:
        return (
            f"AssembledObject({self.oid}, {self.node.label!r}, "
            f"children={sorted(self.children)})"
        )


@dataclass
class AssembledComplexObject:
    """What the assembly operator emits: a root plus assembly metadata.

    This is the row type flowing up the query tree.  ``fetches`` counts
    disk-level object fetches this complex object caused; ``shared_links``
    counts references satisfied from the shared-component table without
    a fetch.
    """

    root: AssembledObject
    serial: int
    fetches: int = 0
    shared_links: int = 0
    #: assembled under the ``partial`` degradation mode with at least
    #: one faulted subtree dropped; :meth:`verify_swizzled` will fail
    #: on such objects by design (the missing references dangle).
    degraded: bool = False
    #: template subtrees lost to faults (0 unless ``degraded``).
    missing_components: int = 0

    @property
    def root_oid(self) -> Oid:
        """OID of the root object."""
        return self.root.oid

    def object_count(self) -> int:
        """Distinct objects in this assembled complex object."""
        return self.root.count_objects()

    def scan(self) -> Iterator[AssembledObject]:
        """Traverse the swizzled structure (pre-order, per-path)."""
        return self.root.walk()

    def verify_swizzled(self) -> None:
        """Check every template-followed, non-null reference is swizzled.

        Raises :class:`AssemblyError` on a dangling reference — used by
        tests and the paranoid mode of examples.
        """
        for obj in self.root.walk():
            for slot, _child_node in obj.node.children.items():
                target = obj.ref_oids[slot]
                if target.is_null():
                    continue
                if slot not in obj.children:
                    raise AssemblyError(
                        f"{obj.oid}: slot {slot} ({target}) not swizzled"
                    )
                if obj.children[slot].oid != target:
                    raise AssemblyError(
                        f"{obj.oid}: slot {slot} swizzled to "
                        f"{obj.children[slot].oid}, expected {target}"
                    )

    def __repr__(self) -> str:
        return (
            f"AssembledComplexObject(root={self.root_oid}, "
            f"objects={self.object_count()}, fetches={self.fetches})"
        )
