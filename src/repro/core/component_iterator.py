"""The component iterator: template-driven companion of assembly.

"In our design, these tasks [what part of a complex object to assemble,
when assembly is complete, how to find unresolved references within a
newly retrieved object] are the responsibility of the component
iterator, a companion routine to the assembly operator." (Section 5)

The component iterator is stateless with respect to any single complex
object: given a fetched record and its template node it materializes
the :class:`AssembledObject` and enumerates the child references the
template says must be resolved.  It also understands *partially
assembled* inputs (Section 4: "When a partially assembled sub-object is
discovered, the operator finds all unresolved references within it"),
which is what stacked bottom-up/top-down assembly (Figure 17) relies
on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.assembled import AssembledObject
from repro.core.template import Template, TemplateNode
from repro.errors import AssemblyError
from repro.storage.oid import Oid
from repro.storage.record import ObjectRecord


class ChildReference:
    """A reference the component iterator wants resolved.

    A lighter precursor of
    :class:`~repro.core.schedulers.UnresolvedReference`: the assembly
    operator adds owner/sequence bookkeeping before scheduling it.
    """

    __slots__ = ("oid", "node", "parent", "slot")

    def __init__(
        self,
        oid: Oid,
        node: TemplateNode,
        parent: AssembledObject,
        slot: int,
    ) -> None:
        self.oid = oid
        self.node = node
        self.parent = parent
        self.slot = slot

    def __repr__(self) -> str:
        return f"ChildReference({self.oid} via slot {self.slot} of {self.parent.oid})"


class ComponentIterator:
    """Template interpreter for the assembly operator."""

    def __init__(self, template: Template) -> None:
        template.finalize()
        self.template = template
        self._rejection_cache: Dict[str, float] = {}

    # -- statistics ------------------------------------------------------------

    def subtree_rejection(self, node: TemplateNode) -> float:
        """Highest rejection probability of any predicate in the subtree.

        This is Section 5's scheduling hint: among equal-cost fetches,
        prefer the component most likely to reject the whole object.
        """
        cached = self._rejection_cache.get(node.label)
        if cached is not None:
            return cached
        best = 0.0
        for sub in node.walk():
            if sub.predicate is not None:
                best = max(best, sub.predicate.rejection_probability)
        self._rejection_cache[node.label] = best
        return best

    # -- materialization -----------------------------------------------------------

    def materialize(
        self, oid: Oid, node: TemplateNode, record: ObjectRecord
    ) -> Tuple[AssembledObject, List[ChildReference]]:
        """Build the in-memory object and list its unresolved children.

        Children whose reference slot holds a null OID simply do not
        exist in this instance (the data may be shallower than the
        template, e.g. a person without a recorded father).
        """
        assembled = AssembledObject(oid, node, record)
        children = self.expand(assembled)
        return assembled, children

    def expand(self, assembled: AssembledObject) -> List[ChildReference]:
        """Unresolved children of one (possibly pre-built) object."""
        refs: List[ChildReference] = []
        swizzled = assembled.children
        ref_oids = assembled.ref_oids
        n_refs = len(ref_oids)
        for slot, child_node in assembled.node.child_items():
            if slot in swizzled:
                continue  # already swizzled (partially assembled input)
            if slot >= n_refs:
                raise AssemblyError(
                    f"{assembled.oid}: template expects reference slot "
                    f"{slot}, record has {n_refs}"
                )
            target = ref_oids[slot]
            if target.is_null():
                continue
            refs.append(ChildReference(target, child_node, assembled, slot))
        return refs

    def expand_partial(
        self, root: AssembledObject
    ) -> List[ChildReference]:
        """All unresolved references anywhere in a partial assembly.

        Walks the already-swizzled structure and collects every
        template-followed slot that still holds only an OID — the
        Section 4 behaviour for partially assembled sub-objects.
        """
        refs: List[ChildReference] = []
        seen = set()
        stack = [root]
        while stack:
            obj = stack.pop()
            if id(obj) in seen:
                continue
            seen.add(id(obj))
            refs.extend(self.expand(obj))
            stack.extend(obj.children.values())
        return refs

    # -- completion accounting --------------------------------------------------------

    def missing_subtree_counts(
        self, assembled: AssembledObject, resolved_children: List[ChildReference]
    ) -> Tuple[int, int]:
        """(nodes, predicates) of template subtrees that have no instance.

        When a reference slot is null, the whole template subtree below
        it will never be fetched; the owner's outstanding-node and
        pending-predicate counters must shrink accordingly.
        """
        live_slots = {ref.slot for ref in resolved_children}
        swizzled = assembled.children
        missing_nodes = 0
        missing_predicates = 0
        for slot, child_node in assembled.node.child_items():
            if slot in live_slots or slot in swizzled:
                continue
            missing_nodes += child_node.subtree_nodes
            missing_predicates += child_node.subtree_predicates
        return missing_nodes, missing_predicates
