"""Per-device request queues: the server-per-device scheduler (§7).

Pairs with :class:`repro.storage.multidisk.MultiDeviceDisk`: one
elevator queue per device ("each server would maintain a queue of
requests"), each sweeping its own device's head.

Because every queue orders only its own device's fetches against its
own head, devices never perturb each other's sweeps — the multi-device
generalization of exclusive device control.

``pop`` serves the device with the **deepest queue**.  Elevator sweeps
pay off in proportion to queue depth, so an equal (round-robin) service
rate is counterproductive: it drains the low-traffic devices to depth
zero and their sweeps degenerate to random seeks.  Longest-queue-first
keeps every device's backlog — and therefore every device's sweep
quality — as deep as the reference flow allows, which is also how a
real asynchronous server array behaves (each server works off its own
backlog; the operator consumes completions as they arrive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.assembled import AssembledComplexObject
from repro.core.assembly import Assembly
from repro.core.schedulers import (
    ElevatorScheduler,
    ReferenceScheduler,
    UnresolvedReference,
)
from repro.errors import (
    AssemblyError,
    BufferFullError,
    DeviceDownError,
    SchedulerError,
    TransientReadError,
)
from repro.storage.events import AsyncIOEngine, InFlightIO
from repro.storage.faults import DeviceHealthTracker, RetryPolicy
from repro.storage.multidisk import MultiDeviceDisk


class MultiDeviceScheduler(ReferenceScheduler):
    """One elevator per device, served round-robin."""

    name = "multi-device"

    def __init__(self, disk: MultiDeviceDisk) -> None:
        super().__init__()
        self._disk = disk
        self._queues: List[ElevatorScheduler] = [
            ElevatorScheduler(head_fn=self._head_fn(device))
            for device in range(disk.n_devices)
        ]
        self._turn = 0

    def _head_fn(self, device: int):
        return lambda: self._disk.head_of(device)

    # -- pool maintenance -----------------------------------------------------

    def add(self, ref: UnresolvedReference) -> None:
        self.ops += 1
        device = self._disk.device_of(ref.page_id)
        self._queues[device].add(ref)

    def _deepest_queue(self) -> int:
        # Longest queue first; ties rotate so no device starves.
        best = None
        best_depth = -1
        n = len(self._queues)
        for offset in range(n):
            index = (self._turn + offset) % n
            depth = len(self._queues[index])
            if depth > best_depth:
                best = index
                best_depth = depth
        assert best is not None and best_depth > 0
        self._turn = (best + 1) % n
        return best

    def pop(self) -> UnresolvedReference:
        self.require_nonempty()
        self.ops += 1
        return self._queues[self._deepest_queue()].pop()

    def pop_batch(self, max_pages: int = 1) -> List[UnresolvedReference]:
        """Batch from the deepest device's sweep.

        Each per-device queue holds only its own device's pages, so a
        batch never mixes devices and its contiguous run stops at the
        device boundary by construction.
        """
        self.require_nonempty()
        self.ops += 1
        return self._queues[self._deepest_queue()].pop_batch(max_pages)

    def remove_owner(self, owner: int) -> List[UnresolvedReference]:
        removed: List[UnresolvedReference] = []
        for queue in self._queues:
            removed.extend(queue.remove_owner(owner))
        return removed

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues)

    def queue_depths(self) -> List[int]:
        """Pending references per device (for balance diagnostics)."""
        return [len(queue) for queue in self._queues]

    # -- per-device view (event-driven drivers) ------------------------------

    def devices_pending(self) -> List[int]:
        return [
            device
            for device, queue in enumerate(self._queues)
            if len(queue) > 0
        ]

    def device_depth(self, device: int) -> int:
        return len(self._queues[device])

    def pop_on(self, device: int) -> UnresolvedReference:
        self.ops += 1
        return self._queues[device].pop()

    def pop_batch_on(
        self, device: int, max_pages: int = 1
    ) -> List[UnresolvedReference]:
        self.ops += 1
        return self._queues[device].pop_batch(max_pages)


@dataclass
class PipelineStats:
    """Counters for one :class:`PipelinedAssembly` run."""

    #: I/O requests issued to the engine (including zero-read ones).
    issued: int = 0
    #: issued requests that performed at least one physical read.
    physical_issues: int = 0
    #: issued requests fully satisfied from the buffer (no device time).
    zero_read_issues: int = 0
    #: batches that overflowed the pin bound and resolved synchronously.
    sync_fallbacks: int = 0
    #: largest number of requests simultaneously in flight.
    max_in_flight: int = 0
    #: transient faults retried at issue time (on the device timeline).
    fault_retries: int = 0
    #: references re-queued because their device was down.
    fault_requeues: int = 0
    #: batches whose issue-time retries ran out and fell back to the
    #: operator's synchronous fault handling.
    fault_fallbacks: int = 0
    #: milliseconds the driver idled waiting for quarantined devices.
    quarantine_wait_ms: float = 0.0


class PipelinedAssembly:
    """Completion-driven driver: overlapped I/O across device timelines.

    Wraps an open (or openable) :class:`~repro.core.assembly.Assembly`
    and an :class:`~repro.storage.events.AsyncIOEngine` over the same
    disk.  The loop keeps every device that has pending references fed
    with up to ``issue_depth`` outstanding requests (deepest queue
    first, like :class:`MultiDeviceScheduler`), waits for the earliest
    completion, resolves the completed batch's references — which may
    emit objects, abort owners, admit new roots, and expose new
    references — and re-issues.  Elapsed time is the engine's clock:
    ``max`` over device timelines plus exposed CPU, not ``sum`` over
    reads.

    ``issue_depth=1`` with a single device and ``batch_pages=1``
    degenerates to the synchronous loop exactly (the property-tested
    invariance); deeper issue hides ``cpu_ms_per_ref`` of resolution
    work per reference behind the in-flight reads.

    Known waste, by design: with ``issue_depth > 1`` a second reference
    to a *shared* component can be issued while the first is still in
    flight — the shared-component table only satisfies references after
    the first resolves — costing a duplicate (usually buffer-hit) fetch
    but never a duplicate materialization.
    """

    def __init__(
        self,
        assembly: Assembly,
        engine: AsyncIOEngine,
        issue_depth: int = 1,
        batch_pages: int = 1,
        cpu_ms_per_ref: float = 0.0,
        retry_policy: Optional[RetryPolicy] = None,
        health: Optional[DeviceHealthTracker] = None,
    ) -> None:
        if issue_depth <= 0:
            raise AssemblyError("issue_depth must be positive")
        if batch_pages <= 0:
            raise AssemblyError("batch_pages must be positive")
        if cpu_ms_per_ref < 0:
            raise AssemblyError("cpu_ms_per_ref must be non-negative")
        if engine.disk is not assembly.store.disk:
            raise AssemblyError(
                "engine and assembly must drive the same disk"
            )
        self._assembly = assembly
        self._engine = engine
        self._issue_depth = issue_depth
        self._batch_pages = batch_pages
        self._cpu_ms_per_ref = cpu_ms_per_ref
        self._retry_policy = retry_policy
        #: per-device circuit breaker over the engine clock; a down
        #: device's sweeps are re-queued and the device skipped until
        #: its quarantine expires.
        self.health = (
            health
            if health is not None
            else DeviceHealthTracker(engine.n_devices)
        )
        self.stats = PipelineStats()

    # -- issuing -------------------------------------------------------------

    def _next_device(self) -> int:
        """The deepest pending, non-quarantined device with a free
        issue slot, or -1."""
        scheduler = self._assembly.scheduler
        now = self._engine.clock.now
        best = -1
        best_key: Tuple[int, int] = (0, 0)
        for device in scheduler.devices_pending():
            if self._engine.in_flight(device) >= self._issue_depth:
                continue
            if not self.health.available(device, now):
                continue
            key = (-scheduler.device_depth(device), device)
            if best < 0 or key < best_key:
                best, best_key = device, key
        return best

    def _issue_ready(self) -> None:
        """Issue batches until every pending device is at issue depth."""
        while True:
            device = self._next_device()
            if device < 0:
                return
            scheduler = self._assembly.scheduler
            if self._batch_pages == 1:
                refs = [scheduler.pop_on(device)]
            else:
                refs = scheduler.pop_batch_on(device, self._batch_pages)
            self._issue_batch(device, refs)
            self.stats.max_in_flight = max(
                self.stats.max_in_flight, self._engine.in_flight()
            )

    def _issue_batch(
        self, device: int, refs: List[UnresolvedReference]
    ) -> None:
        assembly = self._assembly
        store = assembly.store
        fetch_pages: List[int] = []
        seen = set()
        for ref in refs:
            if not assembly.needs_fetch(ref):
                continue
            page_id = store.page_of(ref.oid)
            if page_id not in seen:
                seen.add(page_id)
                fetch_pages.append(page_id)
        self.stats.issued += 1
        if not fetch_pages:
            # Nothing needs the disk (shared/preassembled/aborted):
            # complete at "now" without occupying the device timeline.
            self._engine.issue(device, None, payload=(refs, []))
            self.stats.zero_read_issues += 1
            return
        try:
            io = self._engine.issue(
                device,
                self._fix_with_retry(device, fetch_pages),
                payload=(refs, fetch_pages),
            )
        except BufferFullError:
            # The pin bound cannot take the whole batch: degrade to the
            # synchronous per-reference path, still on this device's
            # timeline so its reads are charged where they happened.
            self.stats.sync_fallbacks += 1
            self._engine.issue(
                device,
                lambda: assembly.resolve_external_batch(refs),
                payload=([], []),
            )
            return
        except DeviceDownError as exc:
            # Quarantine the device and put the sweep back in the pool;
            # it re-issues once the circuit breaker reopens.
            self.health.record_failure(
                device,
                now=self._engine.clock.now,
                retry_after=exc.retry_after,
            )
            self.stats.fault_requeues += len(refs)
            assembly.scheduler.add_siblings(refs)
            return
        except TransientReadError:
            # Issue-time retries ran out: resolve synchronously so the
            # operator's own retry policy and degradation mode decide
            # (its reads still price on this device's timeline).
            self.health.record_failure(
                device, now=self._engine.clock.now
            )
            self.stats.fault_fallbacks += 1
            self._engine.issue(
                device,
                lambda: assembly.resolve_external_batch(refs),
                payload=([], []),
            )
            return
        if io.physical_reads:
            self.stats.physical_issues += 1
        else:
            self.stats.zero_read_issues += 1

    def _fix_with_retry(self, device: int, fetch_pages: List[int]):
        """An io_fn pinning ``fetch_pages``, retrying transient faults.

        Retries happen *inside* the issued request, so both the wasted
        reads and the injected backoff are priced on the device's
        timeline.  Device-down faults and pin-bound overflows are not
        retried here — they propagate to :meth:`_issue_batch`'s
        handlers (quarantine / sync fallback).
        """
        buffer = self._assembly.store.buffer
        injector = self._engine.disk.fault_injector

        def io_fn():
            attempt = 0
            while True:
                try:
                    result = buffer.fix_many(fetch_pages)
                except TransientReadError:
                    policy = self._retry_policy
                    if policy is None or not policy.should_retry(attempt):
                        raise
                    backoff = policy.backoff_ms(
                        attempt, self._engine.cost_model
                    )
                    if injector is not None:
                        injector.charge_backoff(backoff)
                    self.stats.fault_retries += 1
                    attempt += 1
                else:
                    if attempt or injector is not None:
                        self.health.record_success(device)
                    return result

        return io_fn

    # -- completing ----------------------------------------------------------

    def _complete_io(self, io: InFlightIO) -> None:
        refs, pinned = io.payload
        try:
            if refs:
                self._assembly.resolve_external_batch(refs)
        finally:
            for page_id in pinned:
                self._assembly.store.buffer.unfix(page_id)
        if self._cpu_ms_per_ref and refs:
            self._engine.spend_cpu(self._cpu_ms_per_ref * len(refs))

    # -- driving -------------------------------------------------------------

    def run(self) -> List[AssembledComplexObject]:
        """Drive the operator to completion; returns everything emitted."""
        assembly = self._assembly
        if not assembly.is_open:
            assembly.open()
        out: List[AssembledComplexObject] = []
        while True:
            self._issue_ready()
            if self._engine.idle():
                out.extend(assembly.drain_emitted())
                if assembly.is_drained():
                    break
                if len(assembly.scheduler) > 0:
                    # References pending but nothing issuable: every
                    # pending device is quarantined.  Let simulated
                    # time pass to the earliest recovery and retry.
                    recovery = self.health.next_recovery(
                        self._engine.clock.now
                    )
                    if recovery is not None:
                        self.stats.quarantine_wait_ms += (
                            recovery - self._engine.clock.now
                        )
                        self._engine.wait_until(recovery)
                        continue
                # Pool dry, nothing in flight, window still occupied:
                # deferred references must run now (raises if truly
                # stalled, mirroring the synchronous safety valve).
                assembly.release_stuck_deferred()
                continue
            self._complete_io(self._engine.wait_next())
            out.extend(assembly.drain_emitted())
        assembly.close()
        return out
