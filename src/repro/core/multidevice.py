"""Per-device request queues: the server-per-device scheduler (§7).

Pairs with :class:`repro.storage.multidisk.MultiDeviceDisk`: one
elevator queue per device ("each server would maintain a queue of
requests"), each sweeping its own device's head.

Because every queue orders only its own device's fetches against its
own head, devices never perturb each other's sweeps — the multi-device
generalization of exclusive device control.

``pop`` serves the device with the **deepest queue**.  Elevator sweeps
pay off in proportion to queue depth, so an equal (round-robin) service
rate is counterproductive: it drains the low-traffic devices to depth
zero and their sweeps degenerate to random seeks.  Longest-queue-first
keeps every device's backlog — and therefore every device's sweep
quality — as deep as the reference flow allows, which is also how a
real asynchronous server array behaves (each server works off its own
backlog; the operator consumes completions as they arrive).
"""

from __future__ import annotations

from typing import List

from repro.core.schedulers import (
    ElevatorScheduler,
    ReferenceScheduler,
    UnresolvedReference,
)
from repro.errors import SchedulerError
from repro.storage.multidisk import MultiDeviceDisk


class MultiDeviceScheduler(ReferenceScheduler):
    """One elevator per device, served round-robin."""

    name = "multi-device"

    def __init__(self, disk: MultiDeviceDisk) -> None:
        super().__init__()
        self._disk = disk
        self._queues: List[ElevatorScheduler] = [
            ElevatorScheduler(head_fn=self._head_fn(device))
            for device in range(disk.n_devices)
        ]
        self._turn = 0

    def _head_fn(self, device: int):
        return lambda: self._disk.head_of(device)

    # -- pool maintenance -----------------------------------------------------

    def add(self, ref: UnresolvedReference) -> None:
        self.ops += 1
        device = self._disk.device_of(ref.page_id)
        self._queues[device].add(ref)

    def _deepest_queue(self) -> int:
        # Longest queue first; ties rotate so no device starves.
        best = None
        best_depth = -1
        n = len(self._queues)
        for offset in range(n):
            index = (self._turn + offset) % n
            depth = len(self._queues[index])
            if depth > best_depth:
                best = index
                best_depth = depth
        assert best is not None and best_depth > 0
        self._turn = (best + 1) % n
        return best

    def pop(self) -> UnresolvedReference:
        self.require_nonempty()
        self.ops += 1
        return self._queues[self._deepest_queue()].pop()

    def pop_batch(self, max_pages: int = 1) -> List[UnresolvedReference]:
        """Batch from the deepest device's sweep.

        Each per-device queue holds only its own device's pages, so a
        batch never mixes devices and its contiguous run stops at the
        device boundary by construction.
        """
        self.require_nonempty()
        self.ops += 1
        return self._queues[self._deepest_queue()].pop_batch(max_pages)

    def remove_owner(self, owner: int) -> List[UnresolvedReference]:
        removed: List[UnresolvedReference] = []
        for queue in self._queues:
            removed.extend(queue.remove_owner(owner))
        return removed

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues)

    def queue_depths(self) -> List[int]:
        """Pending references per device (for balance diagnostics)."""
        return [len(queue) for queue in self._queues]
