"""The paper's contribution: the assembly operator and its companions."""

from repro.core.adaptive import AdaptiveElevatorScheduler
from repro.core.assembled import AssembledComplexObject, AssembledObject
from repro.core.assembly import (
    FAIL_FAST,
    PARTIAL,
    SKIP_OBJECT,
    Assembly,
    AssemblyStats,
)
from repro.core.multidevice import (
    MultiDeviceScheduler,
    PipelinedAssembly,
    PipelineStats,
)
from repro.core.parallel import DeviceServerAssembly, InterleavedAssemblies
from repro.core.tuning import (
    TuningResult,
    max_window_for_buffer,
    pin_bound,
    tune_window,
)
from repro.core.component_iterator import ChildReference, ComponentIterator
from repro.core.predicates import (
    Predicate,
    always_false,
    always_true,
    int_field_predicate,
    int_less_than,
)
from repro.core.schedulers import (
    SCHEDULERS,
    BreadthFirstScheduler,
    CScanScheduler,
    DepthFirstScheduler,
    ElevatorScheduler,
    ReferenceScheduler,
    UnresolvedReference,
    make_scheduler,
)
from repro.core.stacking import StackedAssembly
from repro.core.template import Template, TemplateNode, binary_tree_template
from repro.core.trace import AssemblyTracer, TraceEvent
from repro.core.window import ComplexObjectState, Window

__all__ = [
    "AdaptiveElevatorScheduler",
    "AssembledComplexObject",
    "AssembledObject",
    "Assembly",
    "AssemblyStats",
    "AssemblyTracer",
    "BreadthFirstScheduler",
    "CScanScheduler",
    "DeviceServerAssembly",
    "FAIL_FAST",
    "PARTIAL",
    "SKIP_OBJECT",
    "TraceEvent",
    "InterleavedAssemblies",
    "TuningResult",
    "max_window_for_buffer",
    "pin_bound",
    "tune_window",
    "ChildReference",
    "ComplexObjectState",
    "ComponentIterator",
    "DepthFirstScheduler",
    "ElevatorScheduler",
    "MultiDeviceScheduler",
    "PipelineStats",
    "PipelinedAssembly",
    "Predicate",
    "ReferenceScheduler",
    "SCHEDULERS",
    "StackedAssembly",
    "Template",
    "TemplateNode",
    "UnresolvedReference",
    "Window",
    "always_false",
    "always_true",
    "binary_tree_template",
    "int_field_predicate",
    "int_less_than",
    "make_scheduler",
]
