"""Assembly templates: the structural + statistical map of a complex object.

"The component iterator uses structural and statistical information
contained in a template to control the assembly operator.  A template
resembles a tree similar to the representation of a complex object …
In addition to structural information, the template is annotated with
statistical information.  Currently the statistical information
consists of the degree of sharing between objects and predicates with
predicate selectivity." (paper, Section 5)

A :class:`TemplateNode` describes one storage object of the complex
object: which of its reference slots to follow and what the referenced
components look like.  Nodes carry the two Batory properties the paper
highlights: **recursive definitions** (via :meth:`TemplateNode.recurse`,
unrolled to a bounded depth at finalization) and **borders of shared
components** (the ``shared`` flag plus a sharing degree).

``Template.finalize`` computes the derived annotations assembly needs:
per-subtree predicate counts (for deferred scheduling of components
that cannot reject an object) and node counts (for completion
detection and buffer-bound math).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import TemplateError
from repro.core.predicates import Predicate


@dataclass
class _RecursiveEdge:
    """A child edge that re-enters an ancestor node, bounded in depth."""

    slot: int
    target_label: str
    max_depth: int


class TemplateNode:
    """One node of a template tree.

    ``label`` must be unique within the template; ``type_name`` is
    documentation (the application-level type).  ``shared`` marks a
    border of a shared component (Section 5): assembly will consult the
    shared-component table before fetching and keep the component
    buffered while referenced.  ``sharing_degree`` is the statistical
    annotation (ratio of shared objects to sharing objects, Section 6.4).
    """

    def __init__(
        self,
        label: str,
        type_name: str = "",
        shared: bool = False,
        sharing_degree: float = 0.0,
        predicate: Optional[Predicate] = None,
    ) -> None:
        if not label:
            raise TemplateError("template node needs a non-empty label")
        if not 0.0 <= sharing_degree <= 1.0:
            raise TemplateError(
                f"node {label!r}: sharing_degree must be in [0, 1]"
            )
        if sharing_degree > 0.0 and not shared:
            raise TemplateError(
                f"node {label!r}: sharing_degree set on a non-shared node"
            )
        self.label = label
        self.type_name = type_name or label
        self.shared = shared
        self.sharing_degree = sharing_degree
        self.predicate = predicate
        self._children: Dict[int, TemplateNode] = {}
        self._sorted_items: Optional[List[Tuple[int, "TemplateNode"]]] = None
        self._recursive: List[_RecursiveEdge] = []
        # Derived at finalize():
        self.subtree_predicates = 0
        self.subtree_nodes = 0
        self.depth = 0

    # -- construction ---------------------------------------------------------

    def child(
        self,
        slot: int,
        label: str,
        type_name: str = "",
        shared: bool = False,
        sharing_degree: float = 0.0,
        predicate: Optional[Predicate] = None,
    ) -> "TemplateNode":
        """Attach and return a child template node on reference ``slot``."""
        node = TemplateNode(
            label=label,
            type_name=type_name,
            shared=shared,
            sharing_degree=sharing_degree,
            predicate=predicate,
        )
        self.attach(slot, node)
        return node

    def attach(self, slot: int, node: "TemplateNode") -> None:
        """Attach an existing node as the child on reference ``slot``."""
        if slot < 0:
            raise TemplateError(f"node {self.label!r}: negative ref slot")
        if slot in self._children:
            raise TemplateError(
                f"node {self.label!r}: slot {slot} already has a child"
            )
        self._children[slot] = node
        self._sorted_items = None

    def recurse(self, slot: int, target_label: str, max_depth: int) -> None:
        """Declare that ``slot`` re-enters the ancestor ``target_label``.

        The recursion is unrolled to ``max_depth`` additional levels
        when the template is finalized, which keeps the assembly loop
        iteration-only.  ``max_depth`` of 0 means the edge is ignored.
        """
        if max_depth < 0:
            raise TemplateError("max_depth must be non-negative")
        if slot < 0:
            raise TemplateError(f"node {self.label!r}: negative ref slot")
        if slot in self._children:
            raise TemplateError(
                f"node {self.label!r}: slot {slot} already has a child"
            )
        self._recursive.append(
            _RecursiveEdge(slot=slot, target_label=target_label, max_depth=max_depth)
        )

    # -- structure -------------------------------------------------------------

    @property
    def children(self) -> Dict[int, "TemplateNode"]:
        """Children keyed by the reference slot that leads to them."""
        return dict(self._children)

    def child_items(self) -> List[Tuple[int, "TemplateNode"]]:
        """``(slot, child)`` pairs in slot order.

        The list is cached (and invalidated by :meth:`attach`): the
        component iterator consults it once per fetched object, and the
        per-call sort plus the defensive dict copy of :attr:`children`
        dominated the expansion profile.  Callers must not mutate the
        returned list.
        """
        items = self._sorted_items
        if items is None:
            items = self._sorted_items = sorted(self._children.items())
        return items

    def child_slots(self) -> List[int]:
        """Reference slots with children, in slot order."""
        return [slot for slot, _ in self.child_items()]

    def walk(self) -> Iterator["TemplateNode"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for _, child in self.child_items():
            yield from child.walk()

    def _clone_shallow(self, suffix: str) -> "TemplateNode":
        return TemplateNode(
            label=f"{self.label}{suffix}",
            type_name=self.type_name,
            shared=self.shared,
            sharing_degree=self.sharing_degree,
            predicate=self.predicate,
        )

    def __repr__(self) -> str:
        flags = []
        if self.shared:
            flags.append(f"shared={self.sharing_degree:.2f}")
        if self.predicate is not None:
            flags.append(f"pred={self.predicate.name}")
        extra = (", " + ", ".join(flags)) if flags else ""
        return (
            f"TemplateNode({self.label!r}, children={len(self._children)}"
            f"{extra})"
        )


class Template:
    """A finalized template: validated tree plus derived statistics."""

    def __init__(self, root: TemplateNode) -> None:
        self.root = root
        self._by_label: Dict[str, TemplateNode] = {}
        self._finalized = False

    # -- finalization -----------------------------------------------------------

    def finalize(self) -> "Template":
        """Unroll recursion, validate, and compute derived annotations."""
        if self._finalized:
            return self
        self._copy_counter = 0
        self._unroll_all()
        self._by_label = {}
        for node in self.root.walk():
            if node.label in self._by_label:
                raise TemplateError(
                    f"duplicate template label {node.label!r}"
                )
            self._by_label[node.label] = node
        self._annotate(self.root, depth=0)
        self._finalized = True
        return self

    def clone(self) -> "Template":
        """An independent deep copy (labels preserved, finalized).

        The optimizer uses clones to push predicates into a query's
        template without mutating the shared catalog template.
        """
        self._require_finalized()

        def rec(node: TemplateNode) -> TemplateNode:
            copy = TemplateNode(
                label=node.label,
                type_name=node.type_name,
                shared=node.shared,
                sharing_degree=node.sharing_degree,
                predicate=node.predicate,
            )
            for slot, child in node._children.items():
                copy.attach(slot, rec(child))
            return copy

        return Template(rec(self.root)).finalize()

    def reannotate(self) -> "Template":
        """Recompute derived statistics after mutating annotations.

        Call this after changing ``shared`` flags or attaching
        predicates to a finalized template (the structure itself must
        not change).  Workload helpers use it to decorate the stock
        binary-tree template per experiment.
        """
        self._require_finalized()
        self._annotate(self.root, depth=0)
        return self

    def _unroll_all(self) -> None:
        """Expand recursive edges one level at a time until none remain.

        Each expansion copies the ancestor's subtree under the
        recursing slot with every copied recursive edge's ``max_depth``
        decremented, so the process terminates after ``max_depth``
        rounds per edge.  A node recursing to a non-ancestor is an
        error (a DAG-shaped template must be expressed with explicit
        nodes and ``shared`` borders instead).
        """
        rounds = 0
        while True:
            pending = self._collect_recursive()
            if not pending:
                return
            rounds += 1
            if rounds > 64:
                raise TemplateError("template recursion unroll did not converge")
            for node, ancestors in pending:
                edges = list(node._recursive)
                attachments: List[Tuple[int, TemplateNode]] = []
                for edge in edges:
                    if edge.target_label not in ancestors:
                        raise TemplateError(
                            f"node {node.label!r} recurses to "
                            f"{edge.target_label!r}, which is not an ancestor"
                        )
                    if edge.max_depth <= 0:
                        continue
                    # Copy while the edge is still on the node, so the
                    # copied node carries it with one level less.
                    target = ancestors[edge.target_label]
                    attachments.append((edge.slot, self._copy_subtree(target)))
                node._recursive = []
                for slot, copy in attachments:
                    node.attach(slot, copy)

    def _collect_recursive(self) -> List[Tuple[TemplateNode, Dict[str, TemplateNode]]]:
        found: List[Tuple[TemplateNode, Dict[str, TemplateNode]]] = []

        def visit(node: TemplateNode, ancestors: Dict[str, TemplateNode]) -> None:
            here = dict(ancestors)
            here[node.label] = node
            if node._recursive:
                found.append((node, here))
            for child in node._children.values():
                visit(child, here)

        visit(self.root, {})
        return found

    def _copy_subtree(self, root: TemplateNode) -> TemplateNode:
        """Deep copy with fresh labels; recursive edges lose one level."""
        self._copy_counter += 1
        suffix = f"+{self._copy_counter}"
        relabel: Dict[str, str] = {}

        def rec(node: TemplateNode) -> TemplateNode:
            copy = node._clone_shallow(suffix)
            relabel[node.label] = copy.label
            for slot, child in node._children.items():
                copy.attach(slot, rec(child))
            copy._recursive = [
                _RecursiveEdge(
                    slot=edge.slot,
                    target_label=relabel.get(edge.target_label, edge.target_label),
                    max_depth=edge.max_depth - 1,
                )
                for edge in node._recursive
            ]
            return copy

        return rec(root)

    def _annotate(self, node: TemplateNode, depth: int) -> None:
        node.depth = depth
        nodes = 1
        predicates = 1 if node.predicate is not None else 0
        for child in node._children.values():
            self._annotate(child, depth + 1)
            nodes += child.subtree_nodes
            predicates += child.subtree_predicates
        node.subtree_nodes = nodes
        node.subtree_predicates = predicates

    # -- queries ---------------------------------------------------------------------

    def _require_finalized(self) -> None:
        if not self._finalized:
            raise TemplateError("template must be finalized first")

    @property
    def node_count(self) -> int:
        """Total template nodes (objects per complex object)."""
        self._require_finalized()
        return self.root.subtree_nodes

    @property
    def predicate_count(self) -> int:
        """Total predicates in the template."""
        self._require_finalized()
        return self.root.subtree_predicates

    @property
    def max_depth(self) -> int:
        """Deepest node's depth (root is 0)."""
        self._require_finalized()
        return max(node.depth for node in self.root.walk())

    def node(self, label: str) -> TemplateNode:
        """Look a node up by label."""
        self._require_finalized()
        try:
            return self._by_label[label]
        except KeyError:
            raise TemplateError(f"no template node labelled {label!r}") from None

    def nodes(self) -> List[TemplateNode]:
        """All nodes in pre-order."""
        self._require_finalized()
        return list(self.root.walk())

    def shared_labels(self) -> List[str]:
        """Labels of shared-border nodes."""
        self._require_finalized()
        return [n.label for n in self.root.walk() if n.shared]

    def has_predicates(self) -> bool:
        """Does any node carry a predicate?"""
        return self.predicate_count > 0

    def fingerprint(self) -> str:
        """Stable digest of the template's structure and annotations.

        Two templates share a fingerprint exactly when they request the
        same assembly: same tree shape (labels, slots), same shared
        borders and degrees, and same predicates (by name and
        selectivity — predicate *functions* are opaque, so distinct
        predicates should carry distinct names).  The assembly service
        keys its result cache by (root OID, fingerprint).
        """
        self._require_finalized()
        parts: List[str] = []

        def render(node: TemplateNode, slot: Optional[int]) -> None:
            predicate = ""
            if node.predicate is not None:
                predicate = (
                    f"{node.predicate.name}@{node.predicate.selectivity!r}"
                )
            parts.append(
                f"{slot}|{node.label}|{node.type_name}|{int(node.shared)}"
                f"|{node.sharing_degree!r}|{predicate}"
            )
            for child_slot in node.child_slots():
                render(node.children[child_slot], child_slot)
            parts.append(")")

        render(self.root, None)
        return hashlib.sha1("\n".join(parts).encode()).hexdigest()

    def describe(self) -> str:
        """Multi-line, indented rendering (for logs and docs)."""
        self._require_finalized()
        lines: List[str] = []

        def render(node: TemplateNode, indent: int, slot: Optional[int]) -> None:
            prefix = "  " * indent
            via = f"[slot {slot}] " if slot is not None else ""
            marks = []
            if node.shared:
                marks.append(f"shared {node.sharing_degree:.0%}")
            if node.predicate is not None:
                marks.append(f"pred {node.predicate}")
            tail = f"  ({'; '.join(marks)})" if marks else ""
            lines.append(f"{prefix}{via}{node.label}: {node.type_name}{tail}")
            for child_slot in node.child_slots():
                render(node.children[child_slot], indent + 1, child_slot)

        render(self.root, 0, None)
        return "\n".join(lines)


def binary_tree_template(
    levels: int,
    left_slot: int = 0,
    right_slot: int = 1,
    label_prefix: str = "n",
) -> Template:
    """Template for the paper's benchmark object: a binary tree.

    Section 6 uses 3-level binary trees (7 objects).  Node labels are
    positional: ``n0`` is the root, ``n1``/``n2`` its children, etc.,
    matching the type-per-position scheme of the ACOB-like workload.
    """
    if levels <= 0:
        raise TemplateError("binary tree needs at least one level")

    def build(position: int, level: int) -> TemplateNode:
        node = TemplateNode(
            label=f"{label_prefix}{position}",
            type_name=f"T{position}",
        )
        if level + 1 < levels:
            node.attach(left_slot, build(2 * position + 1, level + 1))
            node.attach(right_slot, build(2 * position + 2, level + 1))
        return node

    return Template(build(0, 0)).finalize()
