"""Reference-pool scheduling: depth-first, breadth-first, elevator.

"At any stage of assembling a complex object there may be several
references yet to be resolved … Ideally, the reference that reduces
disk head movement and overall assembly time will be chosen." (§4)

The pool of :class:`UnresolvedReference` items is the data structure
whose maintenance is the only CPU overhead of set-oriented assembly
(paper, footnote 5: "a list, queue or priority queue").  Three
schedulers implement Section 6.2:

* **depth-first** — LIFO within a complex object, earlier windows
  first: "equivalent to object-at-a-time assembly, regardless of
  window size";
* **breadth-first** — FIFO across the window ("'breadth' refers to the
  breadth of the window and not … a single complex object");
* **elevator** — the SCAN policy over physical page numbers,
  "minimizing disk head movement"; ties on the same page break toward
  the higher rejection probability, implementing Section 5's rule that
  equal-cost fetches prefer the component more likely to abort the
  object.

Every structure operation is counted (``ops``) so the footnote-5
overhead claim can be measured (ablation A-1).  The counters are kept
*honest* with respect to the underlying work: an ``add`` or a ``pop``
(or a ``pop_batch``, which performs a single positioning search) is
one operation, and ``remove_owner`` counts one operation per reference
actually retracted.  The pools back this accounting with matching
asymptotics — the sorted sweep pools and both deque pools keep an
**owner index**, so retracting an aborted object's k references costs
O(k) bookkeeping instead of the full-pool rebuild the original
implementation paid (which made abort-heavy runs quadratic).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_left, insort
from collections import deque
from typing import (
    Callable,
    Deque,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.core.assembled import AssembledObject
from repro.core.template import TemplateNode
from repro.errors import SchedulerError
from repro.storage.oid import Oid


class UnresolvedReference:
    """One pending inter-object reference.

    ``owner`` identifies the in-window complex object; ``parent`` and
    ``parent_slot`` say where to swizzle the fetched child
    (``parent is None`` for window roots).  ``page_id`` is the physical
    location from the OID directory — the elevator's key.  ``rejection``
    is the highest rejection probability in the referenced subtree,
    used for equal-cost tie-breaking.

    A slotted plain class rather than a dataclass: references are the
    single most-allocated object of a run (one per edge of every
    assembled complex object), and the pools key them by identity, so
    the dict-free layout is pure savings.
    """

    __slots__ = (
        "oid",
        "page_id",
        "owner",
        "node",
        "parent",
        "parent_slot",
        "seq",
        "rejection",
        "is_root",
    )

    def __init__(
        self,
        oid: Oid,
        page_id: int,
        owner: int,
        node: TemplateNode,
        parent: Optional[AssembledObject],
        parent_slot: int,
        seq: int,
        rejection: float = 0.0,
        is_root: bool = False,
    ) -> None:
        self.oid = oid
        self.page_id = page_id
        self.owner = owner
        self.node = node
        self.parent = parent
        self.parent_slot = parent_slot
        self.seq = seq
        self.rejection = rejection
        self.is_root = is_root

    def __repr__(self) -> str:
        return (
            f"UnresolvedReference({self.oid}, page={self.page_id}, "
            f"owner={self.owner}, node={self.node.label!r})"
        )


class SweepPool:
    """Owner-indexed sorted pool shared by the sweep schedulers.

    Entries stay sorted by ``(page_id, -rejection, seq)``, exactly the
    order the original list pools used, so SCAN positioning is one
    bisect.  Two structural changes make maintenance cheap:

    * an **owner index** maps each owner to its live references, so
      :meth:`remove_owner` touches only the retracted entries (O(k))
      instead of rebuilding the pool (O(n));
    * removals are **lazy**: a retracted entry becomes a tombstone in
      the sorted list and is purged either when a sweep passes over it
      or when tombstones reach half the list, triggering one O(n)
      compaction — amortized O(1) per removal.

    The pool also understands the physical layout: :meth:`take_page`
    removes every live reference on one page (same-page coalescing),
    and :meth:`take_run` extends that to contiguous pages in a sweep
    direction, which is what turns an elevator sweep into multi-page
    batched reads.
    """

    __slots__ = (
        "_entries",
        "_dead",
        "_owners",
        "_owner_of",
        "_seq_of",
        "_live",
        "_page_live",
        "_recent_pages",
        "_resident_live",
    )

    def __init__(self) -> None:
        self._entries: List[Tuple[int, float, int, UnresolvedReference]] = []
        self._dead: Set[int] = set()
        self._owners: Dict[Hashable, Dict[int, UnresolvedReference]] = {}
        self._owner_of: Dict[int, Hashable] = {}
        self._seq_of: Dict[int, int] = {}
        self._live = 0
        #: live references per page — lets the zero-seek probe iterate
        #: distinct pending pages instead of individual references.
        self._page_live: Dict[int, int] = {}
        #: pages whose residency may have changed since the last
        #: zero-seek probe (new references, or a single-reference pop
        #: that left siblings behind on a page about to be read).
        self._recent_pages: Set[int] = set()
        #: pages confirmed buffer-resident by an earlier probe and
        #: still pending; re-verified (eviction) before being taken.
        self._resident_live: Set[int] = set()

    def __len__(self) -> int:
        return self._live

    # -- maintenance --------------------------------------------------------

    def add(
        self,
        ref: UnresolvedReference,
        owner_key: Optional[Hashable] = None,
        seq: Optional[int] = None,
    ) -> None:
        """Insert a reference.

        ``owner_key`` defaults to ``ref.owner``; callers that multiplex
        several clients into one pool (the device server) pass a
        composite key.  ``seq`` overrides the sort tie-break sequence
        for the same reason — per-assembly sequence numbers are not
        globally unique.
        """
        key = ref.owner if owner_key is None else owner_key
        entry_seq = ref.seq if seq is None else seq
        ref_id = id(ref)
        if ref_id in self._dead:
            # The same object is being re-added while its old entry is
            # still a tombstone; purge eagerly so it cannot resurrect.
            self._compact()
        insort(self._entries, (ref.page_id, -ref.rejection, entry_seq, ref))
        self._owners.setdefault(key, {})[ref_id] = ref
        self._owner_of[ref_id] = key
        self._seq_of[ref_id] = entry_seq
        self._live += 1
        page_live = self._page_live
        page_live[ref.page_id] = page_live.get(ref.page_id, 0) + 1
        self._recent_pages.add(ref.page_id)

    def _unindex(self, ref: UnresolvedReference) -> None:
        ref_id = id(ref)
        key = self._owner_of.pop(ref_id)
        self._seq_of.pop(ref_id, None)
        bucket = self._owners[key]
        del bucket[ref_id]
        if not bucket:
            del self._owners[key]
        self._live -= 1
        self._drop_page_ref(ref.page_id)

    def remove_owner(self, owner_key: Hashable) -> List[UnresolvedReference]:
        """Retract every reference of one owner — O(k) in the retracted."""
        bucket = self._owners.pop(owner_key, None)
        if not bucket:
            return []
        removed = list(bucket.values())
        for ref in removed:
            ref_id = id(ref)
            del self._owner_of[ref_id]
            self._seq_of.pop(ref_id, None)
            self._dead.add(ref_id)
            self._drop_page_ref(ref.page_id)
        self._live -= len(removed)
        if len(self._dead) * 2 > len(self._entries):
            self._compact()
        return removed

    def remove_ref(self, ref: UnresolvedReference) -> None:
        """Retract one specific reference (detour and per-query picks)."""
        self._unindex(ref)
        self._dead.add(id(ref))
        if len(self._dead) * 2 > len(self._entries):
            self._compact()

    def _drop_page_ref(self, page_id: int) -> None:
        """One live reference left ``page_id`` (retired or retracted)."""
        remaining = self._page_live[page_id] - 1
        if remaining:
            self._page_live[page_id] = remaining
        else:
            del self._page_live[page_id]
            self._recent_pages.discard(page_id)
            self._resident_live.discard(page_id)

    def _compact(self) -> None:
        self._entries = [
            entry for entry in self._entries if id(entry[3]) not in self._dead
        ]
        self._dead.clear()

    # -- iteration ----------------------------------------------------------

    def live_entries(
        self,
    ) -> Iterator[Tuple[int, float, int, UnresolvedReference]]:
        """Live ``(page, -rejection, seq, ref)`` tuples in sorted order."""
        for entry in self._entries:
            if id(entry[3]) not in self._dead:
                yield entry

    def seq_of(self, ref: UnresolvedReference) -> int:
        """The sort sequence this pool filed ``ref`` under."""
        return self._seq_of[id(ref)]

    # -- positioning --------------------------------------------------------

    def _split(self, head: int) -> int:
        return bisect_left(
            self._entries, (head, float("-inf"), -1, None)  # type: ignore[arg-type]
        )

    def _first_live_at_or_above(self, index: int) -> int:
        """Index of the first live entry at or after ``index``.

        Tombstones met on the way are purged in passing (each is
        deleted at most once, so the sweep stays amortized O(1)).
        """
        while index < len(self._entries):
            ref_id = id(self._entries[index][3])
            if ref_id in self._dead:
                del self._entries[index]
                self._dead.discard(ref_id)
            else:
                return index
        return -1

    def _first_live_below(self, index: int) -> int:
        """Index of the first live entry strictly before ``index``."""
        index = min(index, len(self._entries)) - 1
        while index >= 0:
            ref_id = id(self._entries[index][3])
            if ref_id in self._dead:
                del self._entries[index]
                self._dead.discard(ref_id)
            else:
                return index
            index -= 1
        return -1

    def _locate_next(
        self, head: int, direction: int
    ) -> Tuple[int, int]:
        """Index of the next entry under SCAN, with the (possibly
        reversed) sweep direction.  The pool must be non-empty."""
        split = self._split(head)
        if direction > 0:
            index = self._first_live_at_or_above(split)
            if index < 0:
                direction = -1
                index = self._first_live_below(len(self._entries))
        else:
            index = self._first_live_below(split)
            if index < 0:
                direction = 1
                index = self._first_live_at_or_above(0)
        return index, direction

    def _pop_at(self, index: int) -> UnresolvedReference:
        entry = self._entries.pop(index)
        self._unindex(entry[3])
        # A single-reference pop usually precedes a read of its page;
        # siblings left behind may therefore turn resident without any
        # pool event, so flag the page for the next zero-seek probe.
        if entry[0] in self._page_live:
            self._recent_pages.add(entry[0])
        return entry[3]

    # -- single-reference SCAN (the paper's §6.2 elevator) -------------------

    def pop_next(
        self, head: int, direction: int
    ) -> Tuple[UnresolvedReference, int]:
        """Elevator pop: nearest entry in the sweep direction, reversing
        at the ends.  Returns ``(ref, direction)``."""
        index, direction = self._locate_next(head, direction)
        return self._pop_at(index), direction

    def pop_cscan(self, head: int) -> UnresolvedReference:
        """C-SCAN pop: upward only, wrapping to the lowest page."""
        index = self._first_live_at_or_above(self._split(head))
        if index < 0:
            index = self._first_live_at_or_above(0)
        return self._pop_at(index)

    def peek_next(
        self, head: int, direction: int
    ) -> Tuple[Tuple[int, float, int, UnresolvedReference], int]:
        """Like :meth:`pop_next` but leaves the entry in the pool."""
        index, direction = self._locate_next(head, direction)
        return self._entries[index], direction

    # -- batched sweeps ------------------------------------------------------

    def take_page(self, page_id: int) -> List[UnresolvedReference]:
        """Remove and return every live reference on one page, in pool
        order (higher rejection first, then sequence)."""
        lo = self._split(page_id)
        refs: List[UnresolvedReference] = []
        index = lo
        while (
            index < len(self._entries)
            and self._entries[index][0] == page_id
        ):
            ref = self._entries[index][3]
            ref_id = id(ref)
            if ref_id in self._dead:
                self._dead.discard(ref_id)
            else:
                refs.append(ref)
                self._unindex(ref)
            index += 1
        del self._entries[lo:index]
        return refs

    def take_run(
        self, page_id: int, direction: int, max_pages: int
    ) -> List[UnresolvedReference]:
        """Take ``page_id`` plus pending contiguous pages in the sweep
        direction, up to ``max_pages`` distinct pages.

        The run stops at the first page with nothing pending — that is
        where the physical run would break anyway.
        """
        refs = self.take_page(page_id)
        pages = 1
        while refs and pages < max_pages:
            next_page = page_id + direction * pages
            if next_page < 0:
                break
            more = self.take_page(next_page)
            if not more:
                break
            refs.extend(more)
            pages += 1
        return refs

    def take_resident_page(
        self, resident_fn: Callable[[int], bool]
    ) -> List[UnresolvedReference]:
        """All references of the lowest-numbered pending page that is
        buffer-resident, or ``[]`` — a zero-seek batch.

        Residency is tracked incrementally: a pending page can only
        *become* resident after an event the pool sees (a reference
        added for an already-resident page, or a single-reference pop
        that leaves siblings on a page the caller is about to read), so
        each probe checks just the pages flagged since the last one
        plus previously confirmed pages — not every pending page.
        Confirmed pages are re-verified before being taken, so eviction
        by a bounded buffer never yields a stale batch.
        """
        recent = self._recent_pages
        confirmed = self._resident_live
        if recent:
            page_live = self._page_live
            for page_id in recent:
                if page_id in page_live and resident_fn(page_id):
                    confirmed.add(page_id)
            recent.clear()
        if confirmed:
            stale = [p for p in confirmed if not resident_fn(p)]
            for page_id in stale:
                confirmed.discard(page_id)
            if confirmed:
                return self.take_page(min(confirmed))
        return []

    def pop_batch_next(
        self, head: int, direction: int, max_pages: int
    ) -> Tuple[List[UnresolvedReference], int]:
        """Elevator batch: position like :meth:`pop_next`, then take the
        whole page plus its contiguous continuation in the sweep
        direction.  Returns ``(refs, direction)``."""
        index, direction = self._locate_next(head, direction)
        page_id = self._entries[index][0]
        return self.take_run(page_id, direction, max_pages), direction

    def pop_batch_cscan(
        self, head: int, max_pages: int
    ) -> List[UnresolvedReference]:
        """C-SCAN batch: upward-only positioning, upward run."""
        index = self._first_live_at_or_above(self._split(head))
        if index < 0:
            index = self._first_live_at_or_above(0)
        page_id = self._entries[index][0]
        return self.take_run(page_id, 1, max_pages)


class ReferenceScheduler(ABC):
    """The scheduling structure of footnote 5.

    The base class and the built-in schedulers are slotted; subclasses
    that declare no ``__slots__`` of their own (the adaptive and
    multi-device schedulers) simply regain a ``__dict__`` and lose
    nothing.
    """

    __slots__ = ("ops",)

    #: registry name, e.g. ``"elevator"``.
    name: str = "abstract"

    def __init__(self) -> None:
        #: structure operations performed (adds + pops + removals).
        self.ops = 0

    @abstractmethod
    def add(self, ref: UnresolvedReference) -> None:
        """Insert one unresolved reference into the pool."""

    @abstractmethod
    def pop(self) -> UnresolvedReference:
        """Remove and return the next reference to resolve."""

    def pop_batch(self, max_pages: int = 1) -> List[UnresolvedReference]:
        """Remove and return the next batch of references.

        ``max_pages`` bounds the *distinct pages* the batch may span,
        not the reference count — the batch is everything pending on
        the next page(s) of the sweep, so one physical fetch satisfies
        every returned reference.  The base implementation is a single
        :meth:`pop`: schedulers without a physical-order pool have no
        coalescing to exploit.
        """
        return [self.pop()]

    def add_siblings(self, refs: List[UnresolvedReference]) -> None:
        """Insert the child references of one freshly fetched object.

        Default: insert in child-slot order.  Depth-first overrides to
        keep footnote 6's child order under its LIFO pool.
        """
        for ref in refs:
            self.add(ref)

    # -- per-device view (event-driven drivers) ------------------------------
    #
    # The pipelined driver issues I/O per physical device while other
    # devices have requests in flight, so it needs to pop *for a given
    # device* rather than globally.  Single-device pools present
    # themselves as device 0; :class:`repro.core.multidevice.
    # MultiDeviceScheduler` overrides all four methods to expose its
    # per-device elevator queues.

    def devices_pending(self) -> List[int]:
        """Devices with at least one pending reference."""
        return [0] if len(self) > 0 else []

    def device_depth(self, device: int) -> int:
        """Pending references routed to one device."""
        return len(self) if device == 0 else 0

    def pop_on(self, device: int) -> UnresolvedReference:
        """Pop the next reference destined for one device."""
        if device != 0:
            raise SchedulerError(
                f"{self.name} scheduler serves a single device (0), "
                f"not device {device}"
            )
        return self.pop()

    def pop_batch_on(
        self, device: int, max_pages: int = 1
    ) -> List[UnresolvedReference]:
        """Pop the next sweep batch destined for one device."""
        if device != 0:
            raise SchedulerError(
                f"{self.name} scheduler serves a single device (0), "
                f"not device {device}"
            )
        return self.pop_batch(max_pages)

    @abstractmethod
    def remove_owner(self, owner: int) -> List[UnresolvedReference]:
        """Retract every reference of an aborted complex object."""

    @abstractmethod
    def __len__(self) -> int:
        """Pending reference count."""

    def require_nonempty(self) -> None:
        """Raise :class:`SchedulerError` when the pool is empty."""
        if len(self) == 0:
            raise SchedulerError(f"{self.name} scheduler pool is empty")


class _IndexedDequeScheduler(ReferenceScheduler):
    """Shared owner-indexed machinery for the two deque schedulers.

    The deque gives the discipline (LIFO or FIFO); the owner index
    gives O(k) :meth:`remove_owner` via tombstones, purged as pops
    sweep over them or when they reach half the deque.
    """

    __slots__ = ("_deque", "_owners", "_dead", "_live")

    def __init__(self) -> None:
        super().__init__()
        self._deque: Deque[UnresolvedReference] = deque()
        self._owners: Dict[int, Dict[int, UnresolvedReference]] = {}
        self._dead: Set[int] = set()
        self._live = 0

    def _index(self, ref: UnresolvedReference) -> None:
        ref_id = id(ref)
        if ref_id in self._dead:
            # Re-add of a retracted object: purge its tombstone first so
            # the old deque occurrence cannot pop as the new entry.
            self._compact()
        self._owners.setdefault(ref.owner, {})[ref_id] = ref
        self._live += 1

    def _take(
        self, pop: Callable[[], UnresolvedReference]
    ) -> UnresolvedReference:
        while True:
            ref = pop()
            ref_id = id(ref)
            if ref_id in self._dead:
                self._dead.discard(ref_id)
                continue
            bucket = self._owners[ref.owner]
            del bucket[ref_id]
            if not bucket:
                del self._owners[ref.owner]
            self._live -= 1
            return ref

    def remove_owner(self, owner: int) -> List[UnresolvedReference]:
        bucket = self._owners.pop(owner, None)
        if not bucket:
            return []
        removed = list(bucket.values())
        self.ops += len(removed)
        for ref in removed:
            self._dead.add(id(ref))
        self._live -= len(removed)
        if len(self._dead) * 2 > len(self._deque):
            self._compact()
        return removed

    def _compact(self) -> None:
        self._deque = deque(
            ref for ref in self._deque if id(ref) not in self._dead
        )
        self._dead.clear()

    def __len__(self) -> int:
        return self._live


class DepthFirstScheduler(_IndexedDequeScheduler):
    """Object-at-a-time order (Section 6.2's first algorithm).

    Non-root references are pushed and popped LIFO; window roots enter
    at the *bottom* of the stack, so the current complex object is
    fully traversed before the next one starts — which is exactly why
    depth-first scheduling "is equivalent to object-at-a-time assembly,
    regardless of window size".  Children of one object pop in child
    slot order (footnote 6: child order is reference storage order).
    """

    __slots__ = ()

    name = "depth-first"

    def add(self, ref: UnresolvedReference) -> None:
        self.ops += 1
        self._index(ref)
        if ref.is_root:
            self._deque.appendleft(ref)
        else:
            self._deque.append(ref)

    def add_siblings(self, refs: List[UnresolvedReference]) -> None:
        """Push reversed so the first-slot child pops first (footnote 6)."""
        for ref in reversed(refs):
            self.add(ref)

    def pop(self) -> UnresolvedReference:
        self.require_nonempty()
        self.ops += 1
        return self._take(self._deque.pop)


class BreadthFirstScheduler(_IndexedDequeScheduler):
    """FIFO across the whole window (Section 6.2's second algorithm)."""

    __slots__ = ()

    name = "breadth-first"

    def add(self, ref: UnresolvedReference) -> None:
        self.ops += 1
        self._index(ref)
        self._deque.append(ref)

    def pop(self) -> UnresolvedReference:
        self.require_nonempty()
        self.ops += 1
        return self._take(self._deque.popleft)


class ElevatorScheduler(ReferenceScheduler):
    """SCAN over physical page numbers (Section 6.2's third algorithm).

    The pool is kept sorted by ``(page_id, -rejection, seq)``.  ``pop``
    continues in the current sweep direction from the disk head's
    position and reverses at the end, like the classic elevator.
    ``head_fn`` supplies the live head position (wired to the simulated
    disk by the assembly operator).

    ``resident_fn`` (the buffer manager's residency probe) is consulted
    only by :meth:`pop_batch`: a pending page that is already buffered
    is served first, as a zero-seek batch, before the sweep spends any
    head movement.  Single-reference :meth:`pop` deliberately ignores
    residency so the §6.2 reproduction keeps the paper's pure SCAN.
    """

    __slots__ = (
        "_head_fn",
        "_resident_fn",
        "_pool",
        "_direction",
        "resident_batches",
    )

    name = "elevator"

    def __init__(
        self,
        head_fn: Optional[Callable[[], int]] = None,
        resident_fn: Optional[Callable[[int], bool]] = None,
    ) -> None:
        super().__init__()
        self._head_fn = head_fn if head_fn is not None else (lambda: 0)
        self._resident_fn = resident_fn
        self._pool = SweepPool()
        self._direction = 1  # +1 sweeping up, -1 sweeping down
        #: batches served off buffer-resident pages (no seek charged).
        self.resident_batches = 0

    def add(self, ref: UnresolvedReference) -> None:
        self.ops += 1
        self._pool.add(ref)

    def pop(self) -> UnresolvedReference:
        self.require_nonempty()
        self.ops += 1
        ref, self._direction = self._pool.pop_next(
            self._head_fn(), self._direction
        )
        return ref

    def pop_batch(self, max_pages: int = 1) -> List[UnresolvedReference]:
        self.require_nonempty()
        self.ops += 1
        if self._resident_fn is not None:
            refs = self._pool.take_resident_page(self._resident_fn)
            if refs:
                self.resident_batches += 1
                return refs
        refs, self._direction = self._pool.pop_batch_next(
            self._head_fn(), self._direction, max_pages
        )
        return refs

    def remove_owner(self, owner: int) -> List[UnresolvedReference]:
        removed = self._pool.remove_owner(owner)
        self.ops += len(removed)
        return removed

    def __len__(self) -> int:
        return len(self._pool)


class CScanScheduler(ReferenceScheduler):
    """Circular SCAN: sweep upward only, wrap to the lowest page.

    The classic fairness variant of the elevator: instead of reversing
    at the top, the head jumps back to the lowest pending page and
    sweeps up again.  Under pure seek-distance accounting the wrap
    costs a long seek, so C-SCAN trades a little total movement for
    bounded per-request waiting — worth having as a comparison point
    for the §6.2 scheduling study.  ``resident_fn`` plays the same
    batch-only role as on :class:`ElevatorScheduler`.
    """

    __slots__ = ("_head_fn", "_resident_fn", "_pool", "resident_batches")

    name = "cscan"

    def __init__(
        self,
        head_fn: Optional[Callable[[], int]] = None,
        resident_fn: Optional[Callable[[int], bool]] = None,
    ) -> None:
        super().__init__()
        self._head_fn = head_fn if head_fn is not None else (lambda: 0)
        self._resident_fn = resident_fn
        self._pool = SweepPool()
        self.resident_batches = 0

    def add(self, ref: UnresolvedReference) -> None:
        self.ops += 1
        self._pool.add(ref)

    def pop(self) -> UnresolvedReference:
        self.require_nonempty()
        self.ops += 1
        return self._pool.pop_cscan(self._head_fn())

    def pop_batch(self, max_pages: int = 1) -> List[UnresolvedReference]:
        self.require_nonempty()
        self.ops += 1
        if self._resident_fn is not None:
            refs = self._pool.take_resident_page(self._resident_fn)
            if refs:
                self.resident_batches += 1
                return refs
        return self._pool.pop_batch_cscan(self._head_fn(), max_pages)

    def remove_owner(self, owner: int) -> List[UnresolvedReference]:
        removed = self._pool.remove_owner(owner)
        self.ops += len(removed)
        return removed

    def __len__(self) -> int:
        return len(self._pool)


#: Scheduler registry keyed by benchmark-table names.  The adaptive
#: scheduler (Section 7's integrated algorithm) registers itself here
#: on import of :mod:`repro.core.adaptive`.
SCHEDULERS: Dict[str, type] = {
    DepthFirstScheduler.name: DepthFirstScheduler,
    BreadthFirstScheduler.name: BreadthFirstScheduler,
    ElevatorScheduler.name: ElevatorScheduler,
    CScanScheduler.name: CScanScheduler,
}


def make_scheduler(
    name: str,
    head_fn: Optional[Callable[[], int]] = None,
    resident_fn: Optional[Callable[[int], bool]] = None,
) -> ReferenceScheduler:
    """Instantiate a scheduler by registry name.

    ``head_fn`` feeds disk-position-aware schedulers; ``resident_fn``
    feeds buffer-aware ones — the adaptive scheduler uses it on every
    pop, the elevator and C-SCAN only on batched pops.  Schedulers that
    need neither ignore them.
    """
    if name == "adaptive":
        # Imported lazily to avoid a circular import at module load.
        from repro.core.adaptive import AdaptiveElevatorScheduler

        return AdaptiveElevatorScheduler(
            head_fn=head_fn, resident_fn=resident_fn
        )
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        raise SchedulerError(
            f"unknown scheduler {name!r}; choose from "
            f"{sorted(SCHEDULERS) + ['adaptive']}"
        ) from None
    if cls in (ElevatorScheduler, CScanScheduler):
        return cls(head_fn=head_fn, resident_fn=resident_fn)
    return cls()
