"""Reference-pool scheduling: depth-first, breadth-first, elevator.

"At any stage of assembling a complex object there may be several
references yet to be resolved … Ideally, the reference that reduces
disk head movement and overall assembly time will be chosen." (§4)

The pool of :class:`UnresolvedReference` items is the data structure
whose maintenance is the only CPU overhead of set-oriented assembly
(paper, footnote 5: "a list, queue or priority queue").  Three
schedulers implement Section 6.2:

* **depth-first** — LIFO within a complex object, earlier windows
  first: "equivalent to object-at-a-time assembly, regardless of
  window size";
* **breadth-first** — FIFO across the window ("'breadth' refers to the
  breadth of the window and not … a single complex object");
* **elevator** — the SCAN policy over physical page numbers,
  "minimizing disk head movement"; ties on the same page break toward
  the higher rejection probability, implementing Section 5's rule that
  equal-cost fetches prefer the component more likely to abort the
  object.

Every structure operation is counted (``ops``) so the footnote-5
overhead claim can be measured (ablation A-1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_left, insort
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.assembled import AssembledObject
from repro.core.template import TemplateNode
from repro.errors import SchedulerError
from repro.storage.oid import Oid


@dataclass
class UnresolvedReference:
    """One pending inter-object reference.

    ``owner`` identifies the in-window complex object; ``parent`` and
    ``parent_slot`` say where to swizzle the fetched child
    (``parent is None`` for window roots).  ``page_id`` is the physical
    location from the OID directory — the elevator's key.  ``rejection``
    is the highest rejection probability in the referenced subtree,
    used for equal-cost tie-breaking.
    """

    oid: Oid
    page_id: int
    owner: int
    node: TemplateNode
    parent: Optional[AssembledObject]
    parent_slot: int
    seq: int
    rejection: float = 0.0
    is_root: bool = False

    def __repr__(self) -> str:
        return (
            f"UnresolvedReference({self.oid}, page={self.page_id}, "
            f"owner={self.owner}, node={self.node.label!r})"
        )


class ReferenceScheduler(ABC):
    """The scheduling structure of footnote 5."""

    #: registry name, e.g. ``"elevator"``.
    name: str = "abstract"

    def __init__(self) -> None:
        #: structure operations performed (adds + pops + removals).
        self.ops = 0

    @abstractmethod
    def add(self, ref: UnresolvedReference) -> None:
        """Insert one unresolved reference into the pool."""

    @abstractmethod
    def pop(self) -> UnresolvedReference:
        """Remove and return the next reference to resolve."""

    def add_siblings(self, refs: List[UnresolvedReference]) -> None:
        """Insert the child references of one freshly fetched object.

        Default: insert in child-slot order.  Depth-first overrides to
        keep footnote 6's child order under its LIFO pool.
        """
        for ref in refs:
            self.add(ref)

    @abstractmethod
    def remove_owner(self, owner: int) -> List[UnresolvedReference]:
        """Retract every reference of an aborted complex object."""

    @abstractmethod
    def __len__(self) -> int:
        """Pending reference count."""

    def require_nonempty(self) -> None:
        """Raise :class:`SchedulerError` when the pool is empty."""
        if len(self) == 0:
            raise SchedulerError(f"{self.name} scheduler pool is empty")


class DepthFirstScheduler(ReferenceScheduler):
    """Object-at-a-time order (Section 6.2's first algorithm).

    Non-root references are pushed and popped LIFO; window roots enter
    at the *bottom* of the stack, so the current complex object is
    fully traversed before the next one starts — which is exactly why
    depth-first scheduling "is equivalent to object-at-a-time assembly,
    regardless of window size".  Children of one object pop in child
    slot order (footnote 6: child order is reference storage order).
    """

    name = "depth-first"

    def __init__(self) -> None:
        super().__init__()
        self._stack: Deque[UnresolvedReference] = deque()

    def add(self, ref: UnresolvedReference) -> None:
        self.ops += 1
        if ref.is_root:
            self._stack.appendleft(ref)
        else:
            self._stack.append(ref)

    def add_siblings(self, refs: List[UnresolvedReference]) -> None:
        """Push reversed so the first-slot child pops first (footnote 6)."""
        for ref in reversed(refs):
            self.add(ref)

    def pop(self) -> UnresolvedReference:
        self.require_nonempty()
        self.ops += 1
        return self._stack.pop()

    def remove_owner(self, owner: int) -> List[UnresolvedReference]:
        removed = [ref for ref in self._stack if ref.owner == owner]
        if removed:
            self.ops += len(self._stack)
            self._stack = deque(
                ref for ref in self._stack if ref.owner != owner
            )
        return removed

    def __len__(self) -> int:
        return len(self._stack)


class BreadthFirstScheduler(ReferenceScheduler):
    """FIFO across the whole window (Section 6.2's second algorithm)."""

    name = "breadth-first"

    def __init__(self) -> None:
        super().__init__()
        self._queue: Deque[UnresolvedReference] = deque()

    def add(self, ref: UnresolvedReference) -> None:
        self.ops += 1
        self._queue.append(ref)

    def pop(self) -> UnresolvedReference:
        self.require_nonempty()
        self.ops += 1
        return self._queue.popleft()

    def remove_owner(self, owner: int) -> List[UnresolvedReference]:
        removed = [ref for ref in self._queue if ref.owner == owner]
        if removed:
            self.ops += len(self._queue)
            self._queue = deque(
                ref for ref in self._queue if ref.owner != owner
            )
        return removed

    def __len__(self) -> int:
        return len(self._queue)


class ElevatorScheduler(ReferenceScheduler):
    """SCAN over physical page numbers (Section 6.2's third algorithm).

    The pool is kept sorted by ``(page_id, -rejection, seq)``.  ``pop``
    continues in the current sweep direction from the disk head's
    position and reverses at the end, like the classic elevator.
    ``head_fn`` supplies the live head position (wired to the simulated
    disk by the assembly operator).
    """

    name = "elevator"

    def __init__(self, head_fn: Optional[Callable[[], int]] = None) -> None:
        super().__init__()
        self._head_fn = head_fn if head_fn is not None else (lambda: 0)
        self._entries: List[Tuple[int, float, int, UnresolvedReference]] = []
        self._direction = 1  # +1 sweeping up, -1 sweeping down

    def _key(self, ref: UnresolvedReference) -> Tuple[int, float, int]:
        return (ref.page_id, -ref.rejection, ref.seq)

    def add(self, ref: UnresolvedReference) -> None:
        self.ops += 1
        key = self._key(ref)
        insort(self._entries, (key[0], key[1], key[2], ref))

    def pop(self) -> UnresolvedReference:
        self.require_nonempty()
        self.ops += 1
        head = self._head_fn()
        index = self._pick(head)
        _page, _rej, _seq, ref = self._entries.pop(index)
        return ref

    def _pick(self, head: int) -> int:
        """Index of the next entry under SCAN from ``head``."""
        # Position of the first entry with page_id >= head.
        split = bisect_left(self._entries, (head, float("-inf"), -1, None))  # type: ignore[arg-type]
        if self._direction > 0:
            if split < len(self._entries):
                return split
            self._direction = -1
            return len(self._entries) - 1
        if split > 0:
            # Continue sweeping down: the nearest entry at or below head.
            candidate = split - 1
            if candidate >= 0:
                return candidate
        self._direction = 1
        return 0

    def remove_owner(self, owner: int) -> List[UnresolvedReference]:
        removed = [
            entry[3] for entry in self._entries if entry[3].owner == owner
        ]
        if removed:
            self.ops += len(self._entries)
            self._entries = [
                entry for entry in self._entries if entry[3].owner != owner
            ]
        return removed

    def __len__(self) -> int:
        return len(self._entries)


class CScanScheduler(ReferenceScheduler):
    """Circular SCAN: sweep upward only, wrap to the lowest page.

    The classic fairness variant of the elevator: instead of reversing
    at the top, the head jumps back to the lowest pending page and
    sweeps up again.  Under pure seek-distance accounting the wrap
    costs a long seek, so C-SCAN trades a little total movement for
    bounded per-request waiting — worth having as a comparison point
    for the §6.2 scheduling study.
    """

    name = "cscan"

    def __init__(self, head_fn: Optional[Callable[[], int]] = None) -> None:
        super().__init__()
        self._head_fn = head_fn if head_fn is not None else (lambda: 0)
        self._entries: List[Tuple[int, float, int, UnresolvedReference]] = []

    def add(self, ref: UnresolvedReference) -> None:
        self.ops += 1
        insort(
            self._entries, (ref.page_id, -ref.rejection, ref.seq, ref)
        )

    def pop(self) -> UnresolvedReference:
        self.require_nonempty()
        self.ops += 1
        head = self._head_fn()
        index = bisect_left(
            self._entries, (head, float("-inf"), -1, None)  # type: ignore[arg-type]
        )
        if index >= len(self._entries):
            index = 0  # wrap to the lowest pending page
        _page, _rej, _seq, ref = self._entries.pop(index)
        return ref

    def remove_owner(self, owner: int) -> List[UnresolvedReference]:
        removed = [
            entry[3] for entry in self._entries if entry[3].owner == owner
        ]
        if removed:
            self.ops += len(self._entries)
            self._entries = [
                entry for entry in self._entries if entry[3].owner != owner
            ]
        return removed

    def __len__(self) -> int:
        return len(self._entries)


#: Scheduler registry keyed by benchmark-table names.  The adaptive
#: scheduler (Section 7's integrated algorithm) registers itself here
#: on import of :mod:`repro.core.adaptive`.
SCHEDULERS: Dict[str, type] = {
    DepthFirstScheduler.name: DepthFirstScheduler,
    BreadthFirstScheduler.name: BreadthFirstScheduler,
    ElevatorScheduler.name: ElevatorScheduler,
    CScanScheduler.name: CScanScheduler,
}


def make_scheduler(
    name: str,
    head_fn: Optional[Callable[[], int]] = None,
    resident_fn: Optional[Callable[[int], bool]] = None,
) -> ReferenceScheduler:
    """Instantiate a scheduler by registry name.

    ``head_fn`` feeds disk-position-aware schedulers; ``resident_fn``
    feeds buffer-aware ones.  Schedulers that need neither ignore them.
    """
    if name == "adaptive":
        # Imported lazily to avoid a circular import at module load.
        from repro.core.adaptive import AdaptiveElevatorScheduler

        return AdaptiveElevatorScheduler(
            head_fn=head_fn, resident_fn=resident_fn
        )
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        raise SchedulerError(
            f"unknown scheduler {name!r}; choose from "
            f"{sorted(SCHEDULERS) + ['adaptive']}"
        ) from None
    if cls in (ElevatorScheduler, CScanScheduler):
        return cls(head_fn=head_fn)
    return cls()
