"""Hierarchical spans on the simulated clock.

A :class:`Span` is one timed piece of work — a request, an assembly, a
window slot, a scheduler pop, an I/O — with a parent link, start/end
stamps, and free-form attributes.  A :class:`SpanRecorder` collects
them during one execution.

Two properties everything else depends on:

* **Deterministic clocks.**  A recorder stamps spans with whatever
  ``clock_fn`` it was bound to — the event clock's milliseconds, the
  device server's resolution counter, a disk-operation count.  Wall
  time is never consulted, so identical executions produce identical
  traces, and a trace can be diffed against a replay.
* **Strictly observational.**  Recording appends to a list and reads
  the clock; it never feeds anything back into the instrumented code.
  Dropping the recorder (or sampling a span out) changes nothing about
  the execution — the ``tests/obs`` suite proves this bit for bit.

Sampling: ``sample_rate`` bounds overhead on large windows.  The
decision is **deterministic** (a counter, not a random draw — wall
clocks and RNGs would break replayability): the *i*-th sampled-class
span is kept iff ``floor((i+1)·rate) > floor(i·rate)``, so a rate of
0.25 keeps every fourth one.  An unsampled span is the shared
:data:`NULL_SPAN` sentinel; children parented under it are dropped
too, so entire subtrees disappear at zero cost beyond the counter.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import ReproError


@dataclass
class Span:
    """One timed, attributed piece of work in a trace."""

    name: str
    span_id: int
    #: parent span id (None for roots).
    parent_id: Optional[int]
    #: clock stamp when the span began.
    start: float
    #: clock stamp when the span ended (None while open).
    end: Optional[float] = None
    #: coarse category ("request", "window-slot", "device-io", ...).
    kind: str = ""
    #: owning device, where meaningful (-1 otherwise).
    device: int = -1
    #: free-form attributes (JSON-serializable values only).
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        """Has the span been closed?"""
        return self.end is not None

    @property
    def duration(self) -> float:
        """Clock units between start and end (0.0 while open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON-serializable view (the JSONL line format)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "kind": self.kind,
            "device": self.device,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Span":
        """Inverse of :meth:`to_dict` (exporter round-trip)."""
        return cls(
            name=data["name"],
            span_id=data["span_id"],
            parent_id=data["parent_id"],
            start=data["start"],
            end=data["end"],
            kind=data.get("kind", ""),
            device=data.get("device", -1),
            attrs=dict(data.get("attrs", {})),
        )


#: Sentinel for a span that sampling dropped.  Never recorded; ending
#: it is a no-op; children parented under it are dropped too.
NULL_SPAN = Span(name="", span_id=-1, parent_id=None, start=0.0, end=0.0)


class SpanRecorder:
    """Collects spans during one execution, on an injected clock.

    Parameters
    ----------
    clock_fn:
        Zero-argument callable returning the current simulated time as
        a float.  ``None`` falls back to an internal step counter that
        advances by one per stamp — ordering without duration, still
        fully deterministic.  Bind a real clock later with
        :meth:`bind_clock` (the assembly service binds its resolution
        counter, the event engine its millisecond clock).
    sample_rate:
        Fraction of sampled-class spans to keep, in [0, 1].  Applies
        to spans begun with ``sample=True`` (window slots) and to
        roots; always-on structural spans (requests, assemblies) pass
        ``sample=False`` and are never dropped.
    """

    def __init__(
        self,
        clock_fn: Optional[Callable[[], float]] = None,
        sample_rate: float = 1.0,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ReproError(
                f"sample_rate must be in [0, 1], got {sample_rate!r}"
            )
        self._clock_fn = clock_fn
        self.sample_rate = sample_rate
        self.spans: List[Span] = []
        self._next_id = 0
        self._ticks = 0
        #: sampled-class spans seen (the deterministic sampling counter).
        self.sample_candidates = 0
        #: sampled-class spans dropped by the rate.
        self.sampled_out = 0

    # -- clock ---------------------------------------------------------------

    def bind_clock(
        self, clock_fn: Callable[[], float], force: bool = False
    ) -> None:
        """Attach a clock; an already-bound clock wins unless forced."""
        if self._clock_fn is None or force:
            self._clock_fn = clock_fn

    @property
    def clock_bound(self) -> bool:
        """Has a real clock been attached?"""
        return self._clock_fn is not None

    def now(self) -> float:
        """Current stamp: the bound clock, or the fallback step counter."""
        if self._clock_fn is not None:
            return float(self._clock_fn())
        self._ticks += 1
        return float(self._ticks)

    # -- sampling ------------------------------------------------------------

    def _admit_sample(self) -> bool:
        i = self.sample_candidates
        self.sample_candidates += 1
        keep = math.floor((i + 1) * self.sample_rate) > math.floor(
            i * self.sample_rate
        )
        if not keep:
            self.sampled_out += 1
        return keep

    # -- recording -----------------------------------------------------------

    def begin(
        self,
        name: str,
        parent: Optional[Span] = None,
        kind: str = "",
        device: int = -1,
        sample: bool = False,
        **attrs: object,
    ) -> Span:
        """Open a span; returns :data:`NULL_SPAN` when sampled out.

        A span parented under :data:`NULL_SPAN` is dropped with its
        whole subtree.  ``sample=True`` subjects the span to the
        recorder's rate even when its parent is live — window slots use
        this so a large window's per-slot detail can be thinned without
        losing the request-level structure above it.
        """
        if parent is NULL_SPAN:
            return NULL_SPAN
        if sample and not self._admit_sample():
            return NULL_SPAN
        # ``attrs`` is this call's own **kwargs dict, so it is adopted
        # without the defensive copy the hot span paths used to pay.
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            start=self.now(),
            kind=kind,
            device=device,
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def end(self, span: Span, **attrs: object) -> None:
        """Close a span, stamping the clock; NULL_SPAN is a no-op."""
        if span is NULL_SPAN:
            return
        if span.end is not None:
            raise ReproError(f"span {span.span_id} ({span.name}) ended twice")
        span.attrs.update(attrs)
        span.end = self.now()

    @contextmanager
    def span(
        self,
        name: str,
        parent: Optional[Span] = None,
        kind: str = "",
        device: int = -1,
        sample: bool = False,
        **attrs: object,
    ) -> Iterator[Span]:
        """Context-managed :meth:`begin`/:meth:`end` pair."""
        opened = self.begin(
            name, parent=parent, kind=kind, device=device, sample=sample,
            **attrs,
        )
        try:
            yield opened
        finally:
            self.end(opened)

    def add(
        self,
        name: str,
        start: float,
        end: float,
        parent: Optional[Span] = None,
        kind: str = "",
        device: int = -1,
        **attrs: object,
    ) -> Span:
        """Record an already-completed span with explicit stamps.

        The event engine uses this: an I/O's start and completion times
        are known exactly when it is delivered, so the span is recorded
        whole rather than opened and closed around wall-clock work.
        """
        if parent is NULL_SPAN:
            return NULL_SPAN
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            start=start,
            end=end,
            kind=kind,
            device=device,
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def event(
        self,
        name: str,
        parent: Optional[Span] = None,
        kind: str = "",
        device: int = -1,
        **attrs: object,
    ) -> Span:
        """Record an instant (zero-duration) event span."""
        stamp = None if parent is NULL_SPAN else self.now()
        if parent is NULL_SPAN:
            return NULL_SPAN
        return self.add(
            name, stamp, stamp, parent=parent, kind=kind, device=device,
            **attrs,
        )

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def finished(self) -> List[Span]:
        """Closed spans, in start order."""
        return [span for span in self.spans if span.finished]

    def open_spans(self) -> List[Span]:
        """Spans begun but never ended (should be empty at quiescence)."""
        return [span for span in self.spans if not span.finished]

    def roots(self) -> List[Span]:
        """Spans with no parent."""
        return [span for span in self.spans if span.parent_id is None]

    def children_of(self, span: Span) -> List[Span]:
        """Direct children of one span, in start order."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def of_kind(self, kind: str) -> List[Span]:
        """All spans of one kind, in start order."""
        return [span for span in self.spans if span.kind == kind]

    def of_name(self, name: str) -> List[Span]:
        """All spans with one name, in start order."""
        return [span for span in self.spans if span.name == name]

    def phase_totals(self) -> Dict[str, float]:
        """Summed duration per span name (finished spans only)."""
        totals: Dict[str, float] = {}
        for span in self.spans:
            if span.finished:
                totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def clear(self) -> None:
        """Drop every recorded span (counters reset too)."""
        self.spans = []
        self._next_id = 0
        self._ticks = 0
        self.sample_candidates = 0
        self.sampled_out = 0

    def __repr__(self) -> str:
        return (
            f"SpanRecorder(spans={len(self.spans)}, "
            f"sample_rate={self.sample_rate}, "
            f"clock={'bound' if self.clock_bound else 'ticks'})"
        )
