"""Command-line trace tooling: ``python -m repro.obs``.

Three subcommands over recorded span logs::

    python -m repro.obs render [TRACE.jsonl] [-o OUT.json]
    python -m repro.obs summarize TRACE.jsonl
    python -m repro.obs diff A.jsonl B.jsonl [--timing]

``render`` converts a JSONL span log to Chrome ``trace_event`` JSON
(open it in ``chrome://tracing`` or https://ui.perfetto.dev).  With no
input file it runs the built-in instrumented demo service workload
(:mod:`repro.obs.demo`) and renders *that* — a one-command way to get
a real, valid trace out of the system.  ``--jsonl`` additionally
archives the demo's span log so it can be summarized or diffed later.

``summarize`` prints a per-span-name table (count, total, p50/p90/p99
durations); ``diff`` compares two logs structurally and exits non-zero
when they differ — the command-line face of the determinism guarantee.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.export import (
    diff_spans,
    read_jsonl,
    render_summary,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


def _render(args: argparse.Namespace) -> int:
    """The ``render`` subcommand."""
    if args.trace is not None:
        spans = read_jsonl(args.trace)
        source = args.trace
    else:
        from repro.obs.demo import demo_service_run

        recorder, _service = demo_service_run(sample_rate=args.sample_rate)
        spans = recorder.spans
        source = "demo service run"
        if args.jsonl:
            print(f"wrote {write_jsonl(spans, args.jsonl)}")
    path = write_chrome_trace(spans, args.out)
    problems = validate_chrome_trace(json.loads(path.read_text()))
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    print(f"wrote {path} ({len(spans)} spans from {source})")
    return 0


def _summarize(args: argparse.Namespace) -> int:
    """The ``summarize`` subcommand."""
    spans = read_jsonl(args.trace)
    print(render_summary(spans))
    return 0


def _diff(args: argparse.Namespace) -> int:
    """The ``diff`` subcommand."""
    differences = diff_spans(
        read_jsonl(args.a), read_jsonl(args.b), with_timing=args.timing
    )
    if not differences:
        print("traces are structurally equivalent")
        return 0
    for line in differences:
        print(line)
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and dispatch to a subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render, summarize and diff assembly traces.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    render = commands.add_parser(
        "render",
        help="JSONL span log (or the built-in demo run) -> Chrome trace",
    )
    render.add_argument(
        "trace", nargs="?", default=None,
        help="JSONL span log (omit to run the instrumented demo service)",
    )
    render.add_argument(
        "-o", "--out", default="trace.json",
        help="output Chrome trace path (default: trace.json)",
    )
    render.add_argument(
        "--jsonl", metavar="FILE", default=None,
        help="with the demo run, also archive the JSONL span log here",
    )
    render.add_argument(
        "--sample-rate", type=float, default=1.0,
        help="demo run span sampling rate (default: 1.0)",
    )
    render.set_defaults(func=_render)

    summarize = commands.add_parser(
        "summarize", help="per-span-name duration percentiles"
    )
    summarize.add_argument("trace", help="JSONL span log")
    summarize.set_defaults(func=_summarize)

    diff = commands.add_parser(
        "diff", help="structural comparison of two span logs"
    )
    diff.add_argument("a", help="baseline JSONL span log")
    diff.add_argument("b", help="candidate JSONL span log")
    diff.add_argument(
        "--timing", action="store_true",
        help="also require identical clock stamps",
    )
    diff.set_defaults(func=_diff)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
