"""Per-device I/O timelines distilled from the disk's read capture.

The simulated disk already tells the event engine about every physical
read through its I/O listener; this module taps the same capture as a
pure *observer* (the enrichment added for observability:
:meth:`~repro.storage.disk.SimulatedDisk.add_io_observer` fans reads
out to any number of taps without disturbing the engine's exclusive
listener slot).  Each read becomes an :class:`IOSample` — clock stamp,
device, start page, seek distance, pages transferred — from which the
timeline answers the Section 6/7 questions the flat counters cannot:
where did each device's time go, how did seek distance evolve over the
run, which device was the utilization bottleneck.

Service times are *derived* at readout (priced under a
:class:`~repro.storage.costmodel.CostModel`), never charged back to
the disk: attaching a timeline changes no accounting anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.storage.costmodel import CostModel
from repro.storage.disk import SimulatedDisk

from repro.obs.spans import SpanRecorder


@dataclass(frozen=True)
class IOSample:
    """One observed physical read."""

    #: clock stamp when the read was observed.
    at: float
    #: device the start page belongs to (0 on single-device disks).
    device: int
    #: first page of the (possibly multi-page) physical read.
    start_page: int
    #: seek distance charged, in pages.
    distance: int
    #: pages transferred.
    pages: int


class DeviceIOTimeline:
    """Observes physical reads into per-device timelines.

    Parameters
    ----------
    disk:
        The disk to observe.  Multi-device disks attribute each sample
        to the owning device via ``device_of``.
    clock_fn:
        Stamp source (simulated clock).  ``None`` stamps each sample
        with the running count of observed reads — deterministic
        ordering without a time axis.
    cost_model:
        Pricing used at readout to derive busy time and utilization
        (default: the A-9 period model).
    spans:
        Optional recorder; each observed read is also added as a
        completed zero-width ``device-io-sample`` span, putting raw
        reads on the same trace as the higher-level spans.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        clock_fn: Optional[Callable[[], float]] = None,
        cost_model: Optional[CostModel] = None,
        spans: Optional[SpanRecorder] = None,
    ) -> None:
        self.disk = disk
        self._clock_fn = clock_fn
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.spans = spans
        self.samples: List[IOSample] = []
        self._device_of = getattr(disk, "device_of", None)
        self._observer = None

    # -- attachment ----------------------------------------------------------

    def attach(self) -> "DeviceIOTimeline":
        """Start observing (idempotent); returns self for chaining."""
        if self._observer is None:
            self._observer = self.disk.add_io_observer(self._on_read)
        return self

    def detach(self) -> None:
        """Stop observing (idempotent)."""
        if self._observer is not None:
            self.disk.remove_io_observer(self._observer)
            self._observer = None

    def __enter__(self) -> "DeviceIOTimeline":
        return self.attach()

    def __exit__(self, *_exc) -> None:
        self.detach()

    # -- capture -------------------------------------------------------------

    def _now(self) -> float:
        if self._clock_fn is not None:
            return float(self._clock_fn())
        return float(len(self.samples))

    def _on_read(self, start_page: int, distance: int, pages: int) -> None:
        device = 0
        if self._device_of is not None:
            device = self._device_of(start_page)
        sample = IOSample(
            at=self._now(),
            device=device,
            start_page=start_page,
            distance=distance,
            pages=pages,
        )
        self.samples.append(sample)
        if self.spans is not None:
            self.spans.add(
                "device-io-sample",
                start=sample.at,
                end=sample.at,
                kind="device-io",
                device=device,
                page=start_page,
                seek=distance,
                pages=pages,
            )

    # -- readout -------------------------------------------------------------

    def devices(self) -> List[int]:
        """Devices that served at least one read, ascending."""
        return sorted({sample.device for sample in self.samples})

    def seek_timeline(self, device: int) -> List[Tuple[float, int]]:
        """(stamp, seek distance) pairs of one device, in order."""
        return [
            (sample.at, sample.distance)
            for sample in self.samples
            if sample.device == device
        ]

    def busy_ms(self, device: Optional[int] = None) -> float:
        """Derived service time, one device or all (cost-model priced)."""
        total = 0.0
        for sample in self.samples:
            if device is not None and sample.device != device:
                continue
            total += self.cost_model.run_service_time(
                sample.distance, sample.pages
            )
        return total

    def utilization(self, span_ms: Optional[float] = None) -> Dict[int, float]:
        """Per-device busy fraction over ``span_ms``.

        ``span_ms`` defaults to the observed clock span (last stamp
        minus first); with fewer than two samples, or a zero span, the
        fractions are reported against the summed busy time instead
        (each device's share of the total work).
        """
        if span_ms is not None and span_ms <= 0.0:
            raise ReproError("span_ms must be positive")
        per_device = {
            device: self.busy_ms(device) for device in self.devices()
        }
        if span_ms is None:
            stamps = [sample.at for sample in self.samples]
            span_ms = (max(stamps) - min(stamps)) if len(stamps) > 1 else 0.0
        if span_ms <= 0.0:
            total = sum(per_device.values())
            if total == 0.0:
                return {device: 0.0 for device in per_device}
            return {
                device: busy / total for device, busy in per_device.items()
            }
        return {device: busy / span_ms for device, busy in per_device.items()}

    def summary(self) -> Dict[int, Dict[str, object]]:
        """Per-device rollup: reads, pages, seeks, derived busy time."""
        out: Dict[int, Dict[str, object]] = {}
        utilization = self.utilization()
        for device in self.devices():
            samples = [s for s in self.samples if s.device == device]
            seek_total = sum(s.distance for s in samples)
            pages = sum(s.pages for s in samples)
            out[device] = {
                "reads": len(samples),
                "pages": pages,
                "seek_total": seek_total,
                "avg_seek": seek_total / pages if pages else 0.0,
                "busy_ms": self.busy_ms(device),
                "utilization": utilization[device],
            }
        return out

    def __len__(self) -> int:
        return len(self.samples)

    def __repr__(self) -> str:
        return (
            f"DeviceIOTimeline(samples={len(self.samples)}, "
            f"devices={self.devices()})"
        )
