"""Streaming HDR-style histograms for latency percentiles.

The service's exact percentile path sorts every completed latency —
fine for hundreds of requests, wrong as a production mechanism.
:class:`StreamingHistogram` is the standard fix: log-spaced buckets
(HDR histogram style) with a bounded relative error, O(1) recording,
O(buckets) percentile queries, and mergeability across shards.

Bucketing is **integer-exact and platform-stable**: a value's bucket
comes from :func:`math.frexp` (exponent plus a linear sub-bucket of
the mantissa), not from ``log``, so identical inputs always land in
identical buckets and two histograms fed the same stream compare equal
bit for bit — which is what lets the non-interference suite assert
snapshot equality across instrumented and bare runs.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError

#: Sub-buckets per power of two: relative error <= 1/(2*16) ~ 3%.
DEFAULT_SUBBUCKETS = 16

#: Exponent bias keeping every nonzero bucket index positive (doubles
#: bottom out at a frexp exponent of -1073), so the reserved zero
#: bucket at index 0 sorts strictly below all nonzero values and
#: bucket index order equals value order — which percentile() needs.
_EXPONENT_BIAS = 1100


class StreamingHistogram:
    """Log-bucketed streaming histogram with exact min/max tails.

    Values must be non-negative (latencies, waits, durations); zero
    gets its own bucket.  ``subbuckets`` trades memory for relative
    precision: each power of two is split into that many linear
    sub-buckets, bounding relative quantile error by
    ``1 / (2 * subbuckets)``.
    """

    def __init__(self, subbuckets: int = DEFAULT_SUBBUCKETS) -> None:
        if subbuckets <= 0:
            raise ReproError("subbuckets must be positive")
        self.subbuckets = subbuckets
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._buckets: Dict[int, int] = {}

    # -- bucketing -----------------------------------------------------------

    def _index_of(self, value: float) -> int:
        """Bucket index of one value (0 reserved for value == 0)."""
        if value == 0.0:
            return 0
        mantissa, exponent = math.frexp(value)  # mantissa in [0.5, 1)
        sub = int((mantissa - 0.5) * 2.0 * self.subbuckets)
        if sub >= self.subbuckets:  # guard the mantissa -> 1.0 edge
            sub = self.subbuckets - 1
        return 1 + (exponent + _EXPONENT_BIAS) * self.subbuckets + sub

    def _bucket_mid(self, index: int) -> float:
        """Representative (midpoint) value of one bucket."""
        if index == 0:
            return 0.0
        index -= 1
        exponent, sub = divmod(index, self.subbuckets)
        exponent -= _EXPONENT_BIAS
        low = math.ldexp(0.5 + sub / (2.0 * self.subbuckets), exponent)
        high = math.ldexp(
            0.5 + (sub + 1) / (2.0 * self.subbuckets), exponent
        )
        return (low + high) / 2.0

    # -- recording -----------------------------------------------------------

    def record(self, value: float) -> None:
        """Fold one observation in (O(1))."""
        value = float(value)
        if value < 0.0 or value != value:  # negative or NaN
            raise ReproError(
                f"histogram values must be non-negative, got {value!r}"
            )
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = self._index_of(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold another histogram in (shard aggregation)."""
        if other.subbuckets != self.subbuckets:
            raise ReproError(
                "cannot merge histograms with different subbucket counts"
            )
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count

    # -- readout -------------------------------------------------------------

    @property
    def mean(self) -> Optional[float]:
        """Arithmetic mean of the stream (None when empty)."""
        if self.count == 0:
            return None
        return self.total / self.count

    def percentile(self, fraction: float) -> Optional[float]:
        """Value at ``fraction`` (0, 1] of the stream (None when empty).

        Interior quantiles return the bucket midpoint (bounded relative
        error); the extreme tails return the exact observed ``min`` /
        ``max``, so p100 is always the true maximum.
        """
        if not 0.0 < fraction <= 1.0:
            raise ReproError("fraction must be in (0, 1]")
        if self.count == 0:
            return None
        if fraction == 1.0:
            return self.max
        rank = max(1, math.ceil(fraction * self.count))
        if rank == 1:
            return self.min
        if rank == self.count:
            return self.max
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                return self._bucket_mid(index)
        return self.max  # unreachable unless counts drifted

    @property
    def p50(self) -> Optional[float]:
        """Median."""
        return self.percentile(0.50)

    @property
    def p90(self) -> Optional[float]:
        """90th percentile."""
        return self.percentile(0.90)

    @property
    def p99(self) -> Optional[float]:
        """99th percentile."""
        return self.percentile(0.99)

    def snapshot(self) -> Dict[str, object]:
        """Flat summary for metric snapshots and reports."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
        }

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Lossless JSON-serializable form (exporter round-trip)."""
        buckets: List[Tuple[int, int]] = sorted(self._buckets.items())
        return {
            "subbuckets": self.subbuckets,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": [[index, count] for index, count in buckets],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StreamingHistogram":
        """Inverse of :meth:`to_dict`."""
        histogram = cls(subbuckets=data["subbuckets"])
        histogram.count = data["count"]
        histogram.total = data["total"]
        histogram.min = data["min"]
        histogram.max = data["max"]
        histogram._buckets = {
            int(index): int(count) for index, count in data["buckets"]
        }
        return histogram

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamingHistogram):
            return NotImplemented
        return (
            self.subbuckets == other.subbuckets
            and self.count == other.count
            and self.total == other.total
            and self.min == other.min
            and self.max == other.max
            and self._buckets == other._buckets
        )

    def __repr__(self) -> str:
        return (
            f"StreamingHistogram(count={self.count}, min={self.min}, "
            f"max={self.max})"
        )
