"""End-to-end observability: spans, histograms, timelines, exporters.

The paper's entire argument is observational — Figure 5 is literally a
trace of the sliding window, and every Section 6 result is a per-read
statistic.  This package supplies the unified layer the counters alone
cannot: hierarchical :class:`~repro.obs.spans.Span` records stamped on
the *simulated* clock (the event clock, the service resolution counter,
or a disk-operation counter — never wall time), streaming
:class:`~repro.obs.histograms.StreamingHistogram` percentiles, and
per-device :class:`~repro.obs.devices.DeviceIOTimeline` utilization
views distilled from the disk's I/O listener capture.

Everything here is **strictly observational**: enabling a recorder, a
timeline, or an exporter never changes assembly results, fetch order,
disk accounting or service metrics — the ``tests/obs`` non-interference
suite property-tests exactly that, bit for bit.

Exporters render spans to Chrome ``trace_event`` JSON (load it in
``chrome://tracing`` or Perfetto) and to a flat JSONL span log that
round-trips losslessly; ``python -m repro.obs`` renders, summarizes and
diffs traces from the command line.
"""

from repro.obs.devices import DeviceIOTimeline, IOSample
from repro.obs.export import (
    chrome_trace_document,
    diff_spans,
    read_jsonl,
    summarize_spans,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.histograms import StreamingHistogram
from repro.obs.slo import SLOTracker
from repro.obs.spans import NULL_SPAN, Span, SpanRecorder

__all__ = [
    "DeviceIOTimeline",
    "IOSample",
    "NULL_SPAN",
    "SLOTracker",
    "Span",
    "SpanRecorder",
    "StreamingHistogram",
    "chrome_trace_document",
    "diff_spans",
    "read_jsonl",
    "summarize_spans",
    "write_chrome_trace",
    "write_jsonl",
]
