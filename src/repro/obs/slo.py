"""Windowed SLO tracking: exact tail percentiles with hysteresis.

The fabric's load-shedding policy needs a per-shard answer to one
question on every arrival: *is this shard currently violating its
latency objective?*  A streaming histogram sees the whole run — too
much memory of the past to notice a developing overload — so the
tracker keeps a bounded ring of the most recent completion latencies
and computes the exact percentile over just that window.

Breach detection is hysteretic: the tracker trips when the windowed
p99 exceeds the target and only recovers once it falls below
``target * recover_ratio``.  Without the gap, a shard hovering at the
SLO boundary would flap between shedding and admitting on every
completion, which sheds a *random* subset of requests instead of a
contiguous overload interval.  Everything is deterministic: same
completion sequence, same breach intervals, bit for bit.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.errors import ReproError


class SLOTracker:
    """Tracks one latency objective over a sliding completion window.

    Parameters
    ----------
    target_ms:
        The latency objective for ``percentile`` (e.g. p99 <= 400 ms).
    percentile:
        Which tail to hold to the target, as a fraction in (0, 1].
    window:
        Completions remembered; older ones age out of the percentile.
    recover_ratio:
        Fraction of the target the windowed percentile must drop below
        to clear a breach (hysteresis).  Must be in (0, 1].
    min_samples:
        Completions required before the tracker may trip at all —
        a single slow request out of two is not an overload signal.
    """

    def __init__(
        self,
        target_ms: float,
        percentile: float = 0.99,
        window: int = 64,
        recover_ratio: float = 0.8,
        min_samples: int = 8,
    ) -> None:
        if target_ms <= 0:
            raise ReproError("target_ms must be positive")
        if not 0.0 < percentile <= 1.0:
            raise ReproError("percentile must be in (0, 1]")
        if window <= 0:
            raise ReproError("window must be positive")
        if not 0.0 < recover_ratio <= 1.0:
            raise ReproError("recover_ratio must be in (0, 1]")
        if min_samples <= 0:
            raise ReproError("min_samples must be positive")
        self.target_ms = target_ms
        self.percentile = percentile
        self.window = window
        self.recover_ratio = recover_ratio
        self.min_samples = min_samples
        self._recent: Deque[float] = deque(maxlen=window)
        self._breached = False
        #: completions observed over the tracker's lifetime.
        self.observed = 0
        #: observe() calls that flipped the tracker into breach.
        self.breaches = 0
        #: observe() calls that cleared a breach.
        self.recoveries = 0

    def observe(self, latency_ms: float) -> bool:
        """Fold one completion latency in; the new breach state."""
        if latency_ms < 0:
            raise ReproError("latency cannot be negative")
        self._recent.append(latency_ms)
        self.observed += 1
        current = self.current()
        if current is None:
            return self._breached
        if not self._breached and current > self.target_ms:
            self._breached = True
            self.breaches += 1
        elif self._breached and current < self.target_ms * self.recover_ratio:
            self._breached = False
            self.recoveries += 1
        return self._breached

    def current(self) -> Optional[float]:
        """The windowed percentile (None below ``min_samples``)."""
        if len(self._recent) < self.min_samples:
            return None
        ordered = sorted(self._recent)
        index = min(
            len(ordered) - 1, int(self.percentile * len(ordered))
        )
        return ordered[index]

    @property
    def breached(self) -> bool:
        """Is the objective currently violated (with hysteresis)?"""
        return self._breached

    def snapshot(self) -> Dict[str, object]:
        """Flat view for per-shard SLO reporting."""
        return {
            "target_ms": self.target_ms,
            "percentile": self.percentile,
            "window": self.window,
            "current": self.current(),
            "breached": self._breached,
            "observed": self.observed,
            "breaches": self.breaches,
            "recoveries": self.recoveries,
        }

    def __repr__(self) -> str:
        state = "BREACHED" if self._breached else "ok"
        return (
            f"SLOTracker(p{self.percentile * 100:g} <= "
            f"{self.target_ms:g}ms, current={self.current()}, {state})"
        )
