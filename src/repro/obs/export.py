"""Trace exporters: Chrome ``trace_event`` JSON and flat JSONL.

Two formats, two purposes:

* **Chrome trace JSON** (:func:`write_chrome_trace`) renders a
  recorded execution in ``chrome://tracing`` / Perfetto: one complete
  ("ph": "X") event per finished span, timestamps in microseconds,
  tracks (tid) by device for I/O spans and by span kind otherwise.
  This is the Figure 5 walkthrough as an interactive timeline.
* **JSONL span log** (:func:`write_jsonl` / :func:`read_jsonl`) is the
  machine format: one :meth:`~repro.obs.spans.Span.to_dict` object per
  line, round-tripping losslessly so traces can be archived, diffed
  (:func:`diff_spans`) and re-rendered later.

The simulated clocks are unitless-but-consistent within a trace;
Chrome's viewer assumes microseconds, so ``scale_us`` (default 1000.0,
i.e. clock-milliseconds) positions spans sensibly without changing
their relative structure.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.errors import ReproError

from repro.obs.histograms import StreamingHistogram
from repro.obs.spans import Span

#: Required keys of a Chrome complete event (validators check these).
CHROME_EVENT_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")


def span_to_trace_event(span: Span, scale_us: float = 1000.0) -> Dict[str, object]:
    """One finished span as a Chrome complete ("ph": "X") event."""
    if not span.finished:
        raise ReproError(
            f"span {span.span_id} ({span.name}) is still open; "
            f"only finished spans export"
        )
    track = span.device if span.device >= 0 else 0
    args: Dict[str, object] = dict(span.attrs)
    args["span_id"] = span.span_id
    if span.parent_id is not None:
        args["parent_id"] = span.parent_id
    return {
        "name": span.name,
        "cat": span.kind or "span",
        "ph": "X",
        "ts": span.start * scale_us,
        "dur": span.duration * scale_us,
        "pid": 1,
        "tid": track,
        "args": args,
    }


def chrome_trace_document(
    spans: Iterable[Span], scale_us: float = 1000.0
) -> Dict[str, object]:
    """The full Chrome trace JSON object for a set of spans.

    Open spans are skipped (their count lands in ``otherData`` so a
    truncated trace is visible, not silent).
    """
    finished = [span for span in spans if span.finished]
    skipped = sum(1 for span in spans if not span.finished)
    return {
        "traceEvents": [
            span_to_trace_event(span, scale_us) for span in finished
        ],
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs",
            "spans": len(finished),
            "open_spans_skipped": skipped,
        },
    }


def write_chrome_trace(
    spans: Iterable[Span],
    path: Union[str, Path],
    scale_us: float = 1000.0,
) -> Path:
    """Write the Chrome trace JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = chrome_trace_document(list(spans), scale_us)
    path.write_text(json.dumps(document, indent=1, sort_keys=True))
    return path


def validate_chrome_trace(document: Dict[str, object]) -> List[str]:
    """Problems with a Chrome trace document (empty list = valid)."""
    problems: List[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for position, event in enumerate(events):
        for key in CHROME_EVENT_KEYS:
            if key not in event:
                problems.append(f"event {position} missing {key!r}")
        if event.get("ph") == "X" and event.get("dur", 0) < 0:
            problems.append(f"event {position} has negative duration")
    return problems


# -- JSONL span log ----------------------------------------------------------


def write_jsonl(spans: Iterable[Span], path: Union[str, Path]) -> Path:
    """Write one span per line; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for span in spans:
            handle.write(json.dumps(span.to_dict(), sort_keys=True))
            handle.write("\n")
    return path


def read_jsonl(path: Union[str, Path]) -> List[Span]:
    """Parse a JSONL span log back into :class:`Span` objects."""
    spans: List[Span] = []
    with Path(path).open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(Span.from_dict(json.loads(line)))
            except (ValueError, KeyError) as exc:
                raise ReproError(
                    f"{path}:{line_number}: not a span record ({exc})"
                ) from exc
    return spans


# -- summaries and diffs -----------------------------------------------------


def summarize_spans(spans: Sequence[Span]) -> Dict[str, Dict[str, object]]:
    """Per-name rollup: count and duration percentiles.

    Durations stream through a :class:`StreamingHistogram`, so the
    summary of a million-span trace costs buckets, not a sort.
    """
    histograms: Dict[str, StreamingHistogram] = {}
    open_counts: Dict[str, int] = {}
    for span in spans:
        if span.finished:
            histograms.setdefault(span.name, StreamingHistogram()).record(
                span.duration
            )
        else:
            open_counts[span.name] = open_counts.get(span.name, 0) + 1
    out: Dict[str, Dict[str, object]] = {}
    for name in sorted(set(histograms) | set(open_counts)):
        entry: Dict[str, object] = {"open": open_counts.get(name, 0)}
        histogram = histograms.get(name)
        if histogram is not None:
            entry.update(histogram.snapshot())
        else:
            entry.update(StreamingHistogram().snapshot())
        out[name] = entry
    return out


def render_summary(spans: Sequence[Span]) -> str:
    """Human-readable table of :func:`summarize_spans`."""
    summary = summarize_spans(spans)
    if not summary:
        return "(no spans)"
    header = (
        f"{'span':24} {'count':>6} {'open':>5} {'total':>10} "
        f"{'p50':>9} {'p90':>9} {'p99':>9} {'max':>9}"
    )
    lines = [header, "-" * len(header)]

    def fmt(value: object) -> str:
        if value is None:
            return "-"
        return f"{value:.2f}"

    for name, entry in summary.items():
        lines.append(
            f"{name:24} {entry['count']:>6} {entry['open']:>5} "
            f"{fmt(entry['total']):>10} {fmt(entry['p50']):>9} "
            f"{fmt(entry['p90']):>9} {fmt(entry['p99']):>9} "
            f"{fmt(entry['max']):>9}"
        )
    return "\n".join(lines)


def _structure(
    spans: Sequence[Span], with_timing: bool
) -> List[tuple]:
    """Comparable shape of a trace: (name, kind, device, depth) rows.

    Span ids are allocation order, so they are deliberately excluded:
    two traces are structurally equal when the same tree of named spans
    was recorded, whatever ids the recorders handed out.
    """
    by_id = {span.span_id: span for span in spans}

    def depth(span: Span) -> int:
        steps = 0
        current = span
        while current.parent_id is not None:
            parent = by_id.get(current.parent_id)
            if parent is None:
                break
            current = parent
            steps += 1
        return steps

    rows = []
    for span in spans:
        row: tuple = (span.name, span.kind, span.device, depth(span))
        if with_timing:
            row = row + (span.start, span.end)
        rows.append(row)
    return rows


def diff_spans(
    a: Sequence[Span],
    b: Sequence[Span],
    with_timing: bool = False,
    limit: Optional[int] = 20,
) -> List[str]:
    """Structural differences between two traces (empty = equivalent).

    Compares span-by-span in recording order: name, kind, device and
    tree depth (plus stamps when ``with_timing``).  Returns
    human-readable difference lines, capped at ``limit``.
    """
    rows_a = _structure(a, with_timing)
    rows_b = _structure(b, with_timing)
    differences: List[str] = []
    for position, (row_a, row_b) in enumerate(zip(rows_a, rows_b)):
        if row_a != row_b:
            differences.append(f"span {position}: {row_a} != {row_b}")
    if len(rows_a) != len(rows_b):
        differences.append(
            f"span count differs: {len(rows_a)} != {len(rows_b)}"
        )
    if limit is not None and len(differences) > limit:
        overflow = len(differences) - limit
        differences = differences[:limit]
        differences.append(f"... {overflow} more difference(s)")
    return differences
