"""A small, fully instrumented service run producing a sample trace.

One function builds a deterministic multi-client
:class:`~repro.service.server.AssemblyService` workload with every
observability hook attached — request/assembly/window-slot spans from
the service, device-I/O samples from a
:class:`~repro.obs.devices.DeviceIOTimeline` tap — and returns the
recorder.  ``python -m repro.obs render`` uses it to produce a valid
Chrome trace from a real service run with zero setup; the CI trace
artifact and the exporter tests drive the same function.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cluster.layout import layout_database
from repro.cluster.policies import InterObjectClustering
from repro.obs.devices import DeviceIOTimeline
from repro.obs.spans import SpanRecorder
from repro.service.server import AssemblyService
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.store import ObjectStore
from repro.workloads.acob import generate_acob, make_template


def demo_service_run(
    n_objects: int = 60,
    n_clients: int = 3,
    requests_per_client: int = 2,
    roots_per_request: int = 5,
    window: int = 4,
    sample_rate: float = 1.0,
    seed: int = 7,
    recorder: Optional[SpanRecorder] = None,
) -> Tuple[SpanRecorder, AssemblyService]:
    """Run the instrumented demo workload; returns (recorder, service).

    Deterministic end to end: the database, layout, request schedule
    and service execution are all seeded, and every span is stamped on
    the service's resolution clock — two calls with the same arguments
    produce structurally identical traces.
    """
    database = generate_acob(n_objects, seed=seed)
    disk = SimulatedDisk()
    store = ObjectStore(disk, BufferManager(disk))
    layout = layout_database(
        database.complex_objects,
        store,
        InterObjectClustering(
            cluster_pages=64, disk_order=database.type_ids_depth_first()
        ),
        shared=database.shared_pool,
    )
    if recorder is None:
        recorder = SpanRecorder(sample_rate=sample_rate)
    service = AssemblyService(store, span_recorder=recorder)
    timeline = DeviceIOTimeline(
        disk,
        clock_fn=lambda: float(service.clock),
        spans=recorder,
    ).attach()
    try:
        template = make_template(database)
        roots = list(layout.root_order)
        cursor = 0
        request_ids = []
        for _request in range(requests_per_client):
            for _client in range(n_clients):
                batch = [
                    roots[(cursor + i) % len(roots)]
                    for i in range(roots_per_request)
                ]
                cursor += roots_per_request
                request_ids.append(
                    service.submit(batch, template, window_size=window)
                )
        service.run()
        for request_id in request_ids:
            service.result(request_id)
    finally:
        timeline.detach()
    return recorder, service
